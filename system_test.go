package countnet

import (
	"encoding/json"
	"sort"
	"sync"
	"testing"
)

// TestEndToEndSystem exercises the whole public surface against one
// network, the way a downstream adopter would: build, verify, sort
// (three ways), count, serialize, trace, then run the concurrency
// primitives together.
func TestEndToEndSystem(t *testing.T) {
	net, err := NewL(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if net.Width() != 12 || net.MaxBalancerWidth() > 3 {
		t.Fatalf("unexpected structure: %v", net)
	}
	if err := net.VerifyCounting(42); err != nil {
		t.Fatal(err)
	}
	if err := net.VerifySorting(42); err != nil {
		t.Fatal(err)
	}

	// Sorting, three ways, one answer.
	in := []int64{11, 3, 7, 0, 9, 5, 2, 10, 8, 1, 6, 4}
	want := append([]int64(nil), in...)
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })

	direct, err := net.Sort(in)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBatchSorter(net)
	reused := append([]int64(nil), bs.Sort(in)...)
	batch := [][]int64{append([]int64(nil), in...)}
	if err := net.SortBatches(batch, 2); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if direct[i] != want[i] || reused[i] != want[i] || batch[0][i] != want[i] {
			t.Fatalf("sorters disagree at %d: %v %v %v want %v", i, direct, reused, batch[0], want)
		}
	}

	// Counting: serialize, reload, count through the clone.
	data, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}
	var clone Network
	if err := json.Unmarshal(data, &clone); err != nil {
		t.Fatal(err)
	}
	tokens := make([]int64, 12)
	tokens[5] = 25
	a, _ := net.Step(tokens)
	b, _ := clone.Step(tokens)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone disagrees: %v vs %v", a, b)
		}
	}

	// Concurrency: counter + pool + barrier cooperating.
	const workers, items = 4, 300
	ctr := NewCounter(net)
	pool := NewPool[int64](net)
	bar := NewBarrier(net, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var produced, consumed []int64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := ctr.Handle(g)
			ph := pool.Handle(g)
			var local []int64
			for i := 0; i < items; i++ {
				v := h.Next()
				local = append(local, v)
				ph.Put(v)
			}
			bar.Await() // everyone produced
			var got []int64
			for i := 0; i < items; i++ {
				got = append(got, ph.Get())
			}
			bar.Await() // everyone consumed
			mu.Lock()
			produced = append(produced, local...)
			consumed = append(consumed, got...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	sort.Slice(produced, func(a, b int) bool { return produced[a] < produced[b] })
	sort.Slice(consumed, func(a, b int) bool { return consumed[a] < consumed[b] })
	for i := range produced {
		if produced[i] != int64(i) {
			t.Fatalf("counter values not gap-free at %d: %d", i, produced[i])
		}
		if consumed[i] != produced[i] {
			t.Fatalf("pool lost/duplicated values at %d: %d vs %d", i, consumed[i], produced[i])
		}
	}
	if pool.Len() != 0 {
		t.Errorf("pool not drained: %d", pool.Len())
	}

	// Tooling surfaces produce something sensible.
	if tr, err := net.TraceTokens([]int{0, 11}); err != nil || tr == "" {
		t.Errorf("trace: %v", err)
	}
	if d := net.Diagram(); d == "" {
		t.Error("diagram empty")
	}
	if txt := net.FormatText(); txt == "" {
		t.Error("text format empty")
	}
}

// TestCombiningCounterSystem exercises the combining front-end and the
// barrier/counter handle surface end to end: workers draw value blocks
// through combining handles, synchronize through barrier handles, and
// the union of every block must be exactly 0..N-1.
func TestCombiningCounterSystem(t *testing.T) {
	net, err := NewL(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds, block = 4, 50, 8
	ctr := NewCombiningCounter(net)
	bar := NewBarrier(net, workers)
	var mu sync.Mutex
	var all []int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := ctr.Handle(g)
			bh := bar.Handle(g)
			var local []int64
			buf := make([]int64, block)
			for r := 0; r < rounds; r++ {
				if r%2 == 0 {
					h.NextBlock(buf)
					local = append(local, buf...)
				} else {
					local = append(local, h.Next())
				}
			}
			if gen := bh.Await(); gen != 0 {
				t.Errorf("worker %d saw generation %d, want 0", g, gen)
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("combining counter values not gap-free at %d: %d", i, v)
		}
	}
}
