package countnet

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestNewKLR(t *testing.T) {
	k, err := NewK(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k.Width() != 24 || k.Name() != "K(2,3,4)" {
		t.Errorf("K: %v", k)
	}
	l, err := NewL(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.MaxBalancerWidth() > 4 {
		t.Errorf("L balancer width %d > 4", l.MaxBalancerWidth())
	}
	r, err := NewR(6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth() > 16 {
		t.Errorf("R depth %d", r.Depth())
	}
	if _, err := NewK(1); err == nil {
		t.Error("NewK(1) accepted")
	}
	if _, err := NewL(); err == nil {
		t.Error("NewL() accepted")
	}
	if _, err := NewR(2, 1); err == nil {
		t.Error("NewR(2,1) accepted")
	}
}

func TestBaselineConstructors(t *testing.T) {
	for _, c := range []struct {
		name string
		mk   func(int) (*Network, error)
		w    int
		ok   bool
	}{
		{"bitonic", NewBitonic, 8, true},
		{"bitonic", NewBitonic, 6, false},
		{"periodic", NewPeriodic, 8, true},
		{"oddeven", NewOddEvenMergeSort, 16, true},
		{"oddeven", NewOddEvenMergeSort, 12, false},
		{"bubble", NewBubble, 5, true},
	} {
		n, err := c.mk(c.w)
		if c.ok && err != nil {
			t.Errorf("%s(%d): %v", c.name, c.w, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s(%d) accepted", c.name, c.w)
		}
		if err == nil && n.Width() != c.w {
			t.Errorf("%s(%d) width %d", c.name, c.w, n.Width())
		}
	}
}

func TestSort(t *testing.T) {
	n, err := NewL(2, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int64, 30)
	for i := range in {
		in[i] = int64((i * 17) % 30)
	}
	out, err := n.Sort(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != int64(i) {
			t.Fatalf("Sort = %v", out)
		}
	}
	if _, err := n.Sort([]int64{1, 2}); err == nil {
		t.Error("short batch accepted")
	}
}

func TestSortFunc(t *testing.T) {
	n, err := NewK(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"fig", "apple", "egg", "date", "banana", "cherry"}
	out, err := SortFunc(n, words, func(a, b string) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(out) {
		t.Errorf("SortFunc = %v", out)
	}
	if _, err := SortFunc(n, []string{"x"}, func(a, b string) bool { return a < b }); err == nil {
		t.Error("short batch accepted")
	}
}

func TestStep(t *testing.T) {
	n, err := NewK(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.Step([]int64{10, 0, 0, 0, 0, 0, 0, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 1; i < len(out); i++ {
		if d := out[i-1] - out[i]; d < 0 || d > 1 {
			t.Fatalf("Step output %v not step", out)
		}
	}
	for _, v := range out {
		total += v
	}
	if total != 13 {
		t.Fatalf("token loss: %v", out)
	}
	if _, err := n.Step([]int64{1}); err == nil {
		t.Error("short input accepted")
	}
}

func TestVerifyMethods(t *testing.T) {
	good, _ := NewL(2, 3)
	if err := good.VerifyCounting(1); err != nil {
		t.Errorf("L(2,3) counting: %v", err)
	}
	if err := good.VerifySorting(1); err != nil {
		t.Errorf("L(2,3) sorting: %v", err)
	}
	bad, _ := NewBubble(4)
	if err := bad.VerifyCounting(1); err == nil {
		t.Error("bubble verified as counting")
	}
	if err := bad.VerifySorting(1); err != nil {
		t.Errorf("bubble sorting: %v", err)
	}
}

func TestCounterEndToEnd(t *testing.T) {
	n, err := NewL(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(n)
	var mu sync.Mutex
	var all []int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := c.Handle(g)
			local := make([]int64, 400)
			for i := range local {
				local[i] = h.Next()
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("values not gap-free at %d: %d", i, v)
		}
	}
	if v := c.Next(); v != int64(len(all)) {
		t.Errorf("shared Next after quiescence = %d, want %d", v, len(all))
	}
}

func TestJSONFacade(t *testing.T) {
	n, err := NewK(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Width() != 6 || back.Depth() != n.Depth() {
		t.Errorf("round trip: %v", back.String())
	}
	// The round-tripped network still works.
	out, err := back.Step([]int64{4, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int64{1, 1, 1, 1, 0, 0}) {
		t.Errorf("round-tripped Step = %v", out)
	}
}

func TestDiagramOutputs(t *testing.T) {
	n, _ := NewK(2, 2)
	if !strings.Contains(n.DOT(), "digraph") {
		t.Error("DOT malformed")
	}
	if !strings.Contains(n.ASCII(), "layer") {
		t.Error("ASCII malformed")
	}
	if !strings.Contains(n.Diagram(), "●") {
		t.Error("Diagram malformed")
	}
	if !strings.Contains(n.String(), "K(2,2)") {
		t.Error("String malformed")
	}
	hist := n.BalancerWidthHistogram()
	if hist[4] != 1 || len(hist) != 1 {
		t.Errorf("histogram = %v", hist)
	}
}

func TestBarrierFacade(t *testing.T) {
	n, err := NewL(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const parties, gens = 4, 10
	b := NewBarrier(n, parties)
	var wg sync.WaitGroup
	fail := make(chan string, parties)
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := int64(0); g < gens; g++ {
				if got := b.Await(); got != g {
					fail <- fmt.Sprintf("generation %d, want %d", got, g)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}

func TestTextFormatFacade(t *testing.T) {
	n, err := NewL(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	text := n.FormatText()
	back, err := ParseTextNetwork("reparsed", 6, text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.Size() != n.Size() || back.Depth() != n.Depth() {
		t.Errorf("text round trip: %v vs %v", back, n)
	}
	if err := back.VerifyCounting(3); err != nil {
		t.Errorf("reparsed network: %v", err)
	}
	if _, err := ParseTextNetwork("bad", 2, "0:9"); err == nil {
		t.Error("bad text accepted")
	}
	// The conventional notation parses directly.
	classic, err := ParseTextNetwork("classic", 4, "0:1 2:3\n0:3 1:2\n0:1 2:3\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := classic.VerifySorting(1); err != nil {
		t.Errorf("classic bitonic: %v", err)
	}
}

func TestVerilogFacade(t *testing.T) {
	n, err := NewL(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	src, err := n.Verilog("net8", 16)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "module net8") {
		t.Error("module name missing")
	}
	wide, _ := NewK(3, 3)
	if _, err := wide.Verilog("x", 8); err == nil {
		t.Error("9-balancer network accepted for verilog")
	}
}

func TestGatesIntrospection(t *testing.T) {
	n, err := NewK(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	gates := n.Gates()
	if len(gates) != n.Size() {
		t.Fatalf("Gates() returned %d, Size() %d", len(gates), n.Size())
	}
	maxLayer := 0
	for _, g := range gates {
		if len(g.Wires) < 2 || g.Layer < 1 {
			t.Fatalf("malformed gate info: %+v", g)
		}
		if g.Layer > maxLayer {
			maxLayer = g.Layer
		}
		if g.Label == "" {
			t.Errorf("gate missing construction label")
		}
	}
	if maxLayer != n.Depth() {
		t.Errorf("max layer %d, depth %d", maxLayer, n.Depth())
	}
	// Returned data is a copy.
	gates[0].Wires[0] = 999
	if n.Gates()[0].Wires[0] == 999 {
		t.Error("Gates() exposes internal state")
	}
	order := n.OutputOrder()
	if len(order) != n.Width() {
		t.Fatalf("OutputOrder length %d", len(order))
	}
	order[0] = 999
	if n.OutputOrder()[0] == 999 {
		t.Error("OutputOrder() exposes internal state")
	}
}

func TestTraceTokens(t *testing.T) {
	n, err := NewK(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.TraceTokens([]int{0, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"token 0", "token 2", "value 0", "exit counts"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %q:\n%s", frag, out)
		}
	}
	if _, err := n.TraceTokens([]int{9}); err == nil {
		t.Error("out-of-range entry accepted")
	}
}

func TestFactorizationHelpers(t *testing.T) {
	fss := Factorizations(12)
	if len(fss) != 4 {
		t.Errorf("Factorizations(12) = %v", fss)
	}
	bal := BalancedFactorization(64, 3)
	if len(bal) != 3 || bal[0] != 4 {
		t.Errorf("BalancedFactorization(64,3) = %v", bal)
	}
	// The balanced factorization feeds straight into NewL.
	n, err := NewL(bal...)
	if err != nil || n.Width() != 64 {
		t.Errorf("NewL(balanced): %v %v", n, err)
	}
}

// TestOptConstructors covers the sorting-only optimal-base wrappers:
// they sort, expose the expected structure, and reject bad widths.
// The counting verdict is deliberately not asserted (see NewKOpt).
func TestOptConstructors(t *testing.T) {
	ko, err := NewKOpt(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ko.VerifySorting(1); err != nil {
		t.Errorf("NewKOpt(2,2,4): %v", err)
	}
	if got := ko.MaxBalancerWidth(); got != 2 {
		t.Errorf("NewKOpt(2,2,4): max balancer width %d, want 2", got)
	}
	lo, err := NewLOpt(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := lo.VerifySorting(1); err != nil {
		t.Errorf("NewLOpt(3,4): %v", err)
	}
	ro, err := NewROpt(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ro.VerifySorting(1); err != nil {
		t.Errorf("NewROpt(4,4): %v", err)
	}
	if got, want := ro.Depth(), 10; got != want {
		t.Errorf("NewROpt(4,4): depth %d, want %d", got, want)
	}
	os, err := NewOptSorter(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.VerifySorting(1); err != nil {
		t.Errorf("NewOptSorter(10): %v", err)
	}
	if _, err := NewOptSorter(17); err == nil {
		t.Error("NewOptSorter(17) should fail")
	}
	if _, err := NewKOpt(); err == nil {
		t.Error("NewKOpt() should fail")
	}
	// The custom facade reaches the same bases.
	c, err := NewCustom(Options{Base: BaseOptBalancer, Staircase: StaircaseOptimizedBase}, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != ko.Size() || c.Depth() != ko.Depth() {
		t.Errorf("NewCustom(opt) %d/%d differs from NewKOpt %d/%d", c.Size(), c.Depth(), ko.Size(), ko.Depth())
	}
	cr, err := NewCustom(Options{Base: BaseOptR, Staircase: StaircaseOptimizedBitonic}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Size() != lo.Size() || cr.Depth() != lo.Depth() {
		t.Errorf("NewCustom(optR) %d/%d differs from NewLOpt %d/%d", cr.Size(), cr.Depth(), lo.Size(), lo.Depth())
	}
}
