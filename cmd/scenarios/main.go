// Command scenarios drives the multi-process traffic harness: it
// launches N worker processes (`countbench -worker`), coordinates
// their phases through a counting-network-backed sync server, injects
// the scenario's faults (bursts, skew, join/leave, stragglers, kills),
// verifies the cross-process step-property/gap oracle, and leaves
// per-worker record files for the benchjson collector.
//
// Usage:
//
//	scenarios -list
//	scenarios -scenario burst -workers 2 -bin bin/countbench -out /tmp/scen
//	scenarios -scenario all -workers 4 -duration 500ms -out /tmp/scen
//
// Every run prints its seed; re-running with the same -scenario,
// -workers, -width and -seed reproduces the same plan (which worker
// straggles, who gets killed, how skew is dealt). See docs/TESTING.md,
// "Layer 6: multi-process scenarios".
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"countnet/internal/bench"
	"countnet/internal/harness"
	"countnet/internal/obs"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list scenarios and exit")
		scenario  = flag.String("scenario", "burst", "scenario name, or 'all' for the full sweep")
		workers   = flag.Int("workers", 2, "worker processes at run start")
		width     = flag.Int("width", 8, "sync server counting-network width (composite, >= 4)")
		duration  = flag.Duration("duration", 300*time.Millisecond, "draw-loop length per phase")
		block     = flag.Int("block", 4, "values leased per draw call")
		seed      = flag.Int64("seed", 1, "plan seed (printed and recorded for reproduction)")
		bin       = flag.String("bin", "", "worker binary (countbench); empty runs workers in-process")
		out       = flag.String("out", "", "directory for per-worker record files (benchjson merges them)")
		flightDir = flag.String("flight-dir", "", "directory for per-worker flight-recorder dumps on kills or oracle failure")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-phase safety timeout")
		verbose   = flag.Bool("v", false, "log harness progress to stderr")
	)
	flag.Parse()

	if *list {
		for _, sc := range harness.Scenarios() {
			fmt.Printf("%-10s  %s\n", sc.Name, sc.Desc)
		}
		return
	}

	var run []harness.Scenario
	if *scenario == "all" {
		run = harness.Scenarios()
	} else {
		sc, err := harness.LookupScenario(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenarios:", err)
			os.Exit(2)
		}
		run = []harness.Scenario{sc}
	}

	opt := harness.Options{
		Workers:       *workers,
		Width:         *width,
		PhaseDuration: *duration,
		Block:         *block,
		Seed:          *seed,
	}
	// The runner process hosts the sync server, so its default flight
	// recorder captures the hub-side block leases and barrier checks;
	// workers carry their own recorders and stream dumps back over the
	// protocol.
	obs.EnableFlight(obs.DefaultFlightSlots)
	ropt := harness.RunnerOptions{
		Bin:          *bin,
		OutDir:       *out,
		FlightDir:    *flightDir,
		PhaseTimeout: *timeout,
	}
	if *bin != "" {
		ropt.BinArgs = []string{"-worker"}
	}
	if *verbose {
		ropt.Log = os.Stderr
	}

	mode := "in-process workers"
	if *bin != "" {
		mode = fmt.Sprintf("worker binary %s", *bin)
	}
	fmt.Printf("scenarios: %d scenario(s), %d workers (%s), width %d, %s per phase, block %d, seed %d\n",
		len(run), *workers, mode, *width, *duration, *block, *seed)

	failed := 0
	for _, sc := range run {
		if err := runOne(sc, opt, ropt); err != nil {
			fmt.Fprintf(os.Stderr, "scenarios: %s: %v\n", sc.Name, err)
			fmt.Fprintf(os.Stderr, "scenarios: reproduce with: scenarios -scenario %s -workers %d -width %d -seed %d\n",
				sc.Name, *workers, *width, *seed)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runOne executes one scenario, checks the oracle, and prints its
// per-phase table.
func runOne(sc harness.Scenario, opt harness.Options, ropt harness.RunnerOptions) error {
	start := time.Now()
	res, err := harness.Run(sc, opt, ropt)
	if err != nil {
		return err
	}
	if err := res.Check(); err != nil {
		if ropt.FlightDir != "" {
			if paths, werr := res.WriteFlightDumps(ropt.FlightDir); werr == nil {
				fmt.Fprintf(os.Stderr, "scenarios: wrote %d flight dumps to %s for post-mortem\n", len(paths), ropt.FlightDir)
			} else {
				fmt.Fprintf(os.Stderr, "scenarios: flight dumps: %v\n", werr)
			}
		}
		return fmt.Errorf("cross-process oracle: %w", err)
	}

	var files []*harness.WorkerFile
	for id, recs := range res.Records {
		files = append(files, &harness.WorkerFile{
			Worker: id, Scenario: res.Scenario, Seed: res.Seed,
			Width: res.Width, Lost: res.Lost[id], Records: recs,
		})
	}
	rows, err := harness.MergeWorkerFiles(files)
	if err != nil {
		return err
	}

	tbl := &bench.Table{
		ID:     "scenario-" + sc.Name,
		Title:  fmt.Sprintf("%s: %s", sc.Name, sc.Desc),
		Note:   fmt.Sprintf("seed %d, width %d, %d phases, oracle passed in %s", res.Seed, res.Width, len(res.Steps), time.Since(start).Round(time.Millisecond)),
		Header: []string{"phase/worker", "ops", "values", "values/sec", "mean draw", "p99 draw"},
	}
	for _, row := range rows {
		tbl.AddRow(row.Name,
			fmt.Sprintf("%.0f", row.Extra["ops"]),
			fmt.Sprintf("%.0f", row.Extra["values"]),
			fmt.Sprintf("%.0f", row.Extra["values_per_sec"]),
			fmtNs(row.NsPerOp), fmtNs(row.Extra["p99_ns"]))
	}
	tbl.Fprint(os.Stdout)
	if ft := res.FleetTable(); ft != "" {
		fmt.Print(ft)
	}

	total := 0
	for _, vals := range res.Issued {
		total += len(vals)
	}
	fmt.Printf("scenarios: %s ok — %d values issued across %d workers (%d lost), oracle passed\n\n",
		sc.Name, total, len(res.Records), len(res.Lost))
	return nil
}

// fmtNs renders nanoseconds compactly ("-" for aggregate rows without
// the metric).
func fmtNs(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}
