// Command verifyall runs the full verification battery over a matrix
// of constructions — every factorization of a set of widths for K and
// L, an R(p,q) grid, and the classical baselines — and exits non-zero
// if anything fails. It is the CI entry point for construction
// correctness.
//
// Usage:
//
//	verifyall                  # default matrix
//	verifyall -widths 24,30    # K/L over all factorizations of these widths
//	verifyall -rmax 12         # R(p,q) grid bound
//	verifyall -seed 7 -v       # reseed the randomized batteries, list every case
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"countnet"
)

func main() {
	var (
		widths  = flag.String("widths", "12,16,24,30", "comma-separated widths: K and L are verified for every factorization")
		rmax    = flag.Int("rmax", 9, "verify R(p,q) for all 2 <= p,q <= rmax")
		seed    = flag.Int64("seed", 1, "seed for the randomized batteries")
		verbose = flag.Bool("v", false, "print every case, not just failures")
	)
	flag.Parse()

	failures := 0
	total := 0
	check := func(name string, n *countnet.Network, wantCounting bool) {
		total++
		countErr := n.VerifyCounting(*seed)
		sortErr := n.VerifySorting(*seed)
		ok := (countErr == nil) == wantCounting && sortErr == nil
		if !ok {
			failures++
			fmt.Printf("FAIL %-16s counting=%v (want counting=%v) sorting=%v\n",
				name, countErr == nil, wantCounting, errString(sortErr))
			return
		}
		if *verbose {
			fmt.Printf("ok   %-16s width=%-4d depth=%-3d gates=%-5d maxGate=%d\n",
				name, n.Width(), n.Depth(), n.Size(), n.MaxBalancerWidth())
		}
	}

	for _, ws := range strings.Split(*widths, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(ws))
		if err != nil || w < 2 {
			fmt.Fprintf(os.Stderr, "verifyall: bad width %q\n", ws)
			os.Exit(2)
		}
		for _, fs := range countnet.Factorizations(w) {
			k, err := countnet.NewK(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			check(k.Name(), k, true)
			l, err := countnet.NewL(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			check(l.Name(), l, true)
		}
	}

	for p := 2; p <= *rmax; p++ {
		for q := 2; q <= *rmax; q++ {
			r, err := countnet.NewR(p, q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			check(r.Name(), r, true)
		}
	}

	for _, w := range []int{4, 8, 16} {
		if n, err := countnet.NewBitonic(w); err == nil {
			check(n.Name(), n, true)
		}
		if n, err := countnet.NewPeriodic(w); err == nil {
			check(n.Name(), n, true)
		}
		if n, err := countnet.NewOddEvenMergeSort(w); err == nil {
			check(n.Name(), n, false) // sorts, must NOT count
		}
	}
	for _, w := range []int{4, 5, 6} {
		if n, err := countnet.NewBubble(w); err == nil {
			check(n.Name(), n, false)
		}
		if n, err := countnet.NewMergeExchange(w); err == nil {
			check(n.Name(), n, false)
		}
	}

	fmt.Printf("verifyall: %d/%d constructions behaved as specified\n", total-failures, total)
	if failures > 0 {
		os.Exit(1)
	}
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
