// Command verifyall runs the full verification battery over a matrix
// of constructions — every factorization of a set of widths for K and
// L (plus their sorting-only Kopt/Lopt variants), an R(p,q)/Ropt(p,q)
// grid, the bitonic converter D(p,q), the embedded depth-optimal
// sorters, and the classical baselines — and exits non-zero if
// anything fails. It is the CI entry point for construction
// correctness.
//
// Each paper construction is confirmed twice, by independent means:
// dynamically (internal/verify pushes tokens and sorts values) and
// statically (internal/netcheck proves width bounds, layerization
// validity, and the paper's depth formulas from the wiring alone).
// With -v every case prints its statically-proven property table next
// to the dynamic verdict.
//
// Usage:
//
//	verifyall                  # default matrix
//	verifyall -widths 24,30    # K/L over all factorizations of these widths
//	verifyall -rmax 12         # R(p,q) and D(p,q) grid bound
//	verifyall -seed 7 -v       # reseed the randomized batteries, list every case
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"countnet"
	"countnet/internal/core"
	"countnet/internal/netcheck"
)

func main() {
	var (
		widths  = flag.String("widths", "12,16,24,30", "comma-separated widths: K and L are verified for every factorization")
		rmax    = flag.Int("rmax", 9, "verify R(p,q) and D(p,q) for all 2 <= p,q <= rmax")
		seed    = flag.Int64("seed", 1, "seed for the randomized batteries")
		verbose = flag.Bool("v", false, "print every case, not just failures")
	)
	flag.Parse()

	failures := 0
	total := 0
	staticFailures := 0
	staticTotal := 0

	// static records one netcheck proof and renders its verdict cell.
	static := func(p netcheck.Proof) string {
		staticTotal++
		if err := p.Err(); err != nil {
			staticFailures++
			fmt.Printf("FAIL %-16s static proof: %v\n", p.Network, err)
		}
		return p.Summary()
	}

	check := func(name string, n *countnet.Network, wantCounting bool, staticSummary string) {
		total++
		countErr := n.VerifyCounting(*seed)
		sortErr := n.VerifySorting(*seed)
		ok := (countErr == nil) == wantCounting && sortErr == nil
		if !ok {
			failures++
			fmt.Printf("FAIL %-16s counting=%v (want counting=%v) sorting=%v\n",
				name, countErr == nil, wantCounting, errString(sortErr))
			return
		}
		if *verbose {
			fmt.Printf("ok   %-16s width=%-4d depth=%-3d gates=%-5d maxGate=%-3d %s\n",
				name, n.Width(), n.Depth(), n.Size(), n.MaxBalancerWidth(), staticSummary)
		}
	}

	// checkSort verifies the sorting property only — for the opt-base
	// variants, whose embedded bases are sorting networks, not counting
	// networks. Whether a given shape happens to count is neither
	// promised nor refuted, so the counting verdict is not asserted.
	checkSort := func(name string, n *countnet.Network, staticSummary string) {
		total++
		if err := n.VerifySorting(*seed); err != nil {
			failures++
			fmt.Printf("FAIL %-16s sorting=%v\n", name, errString(err))
			return
		}
		if *verbose {
			fmt.Printf("ok   %-16s width=%-4d depth=%-3d gates=%-5d maxGate=%-3d %s (sorting only)\n",
				name, n.Width(), n.Depth(), n.Size(), n.MaxBalancerWidth(), staticSummary)
		}
	}

	for _, ws := range strings.Split(*widths, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(ws))
		if err != nil || w < 2 {
			fmt.Fprintf(os.Stderr, "verifyall: bad width %q\n", ws)
			os.Exit(2)
		}
		for _, fs := range countnet.Factorizations(w) {
			k, err := countnet.NewK(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			// Constructions are memoized, so re-building the core
			// network for the static prover is a cache hit.
			ck, err := core.K(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			check(k.Name(), k, true, static(netcheck.ProveK(ck, fs)))

			l, err := countnet.NewL(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			cl, err := core.L(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			check(l.Name(), l, true, static(netcheck.ProveL(cl, fs)))

			// Optimal-base variants: sorting-only, with their own
			// static proofs (2-balancer width bound when every pair
			// product embeds, additive depth bounds).
			ko, err := countnet.NewKOpt(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			cko, err := core.KOpt(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			checkSort(ko.Name(), ko, static(netcheck.ProveKOpt(cko, fs)))

			lo, err := countnet.NewLOpt(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			clo, err := core.LOpt(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			checkSort(lo.Name(), lo, static(netcheck.ProveLOpt(clo, fs)))
		}
	}

	for p := 2; p <= *rmax; p++ {
		for q := 2; q <= *rmax; q++ {
			r, err := countnet.NewR(p, q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			cr, err := core.R(p, q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			check(r.Name(), r, true, static(netcheck.ProveR(cr, p, q)))

			ro, err := countnet.NewROpt(p, q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			cro, err := core.ROpt(p, q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			checkSort(ro.Name(), ro, static(netcheck.ProveROpt(cro, p, q)))

			// The bitonic converter D(p,q) is a building block, not a
			// counting network on its own, so it gets only the static
			// half: width bound max(p,q) and depth exactly 2.
			d, err := core.BitonicConverterNetwork(p, q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "verifyall:", err)
				os.Exit(1)
			}
			summary := static(netcheck.ProveD(d, p, q))
			if *verbose {
				fmt.Printf("ok   %-16s width=%-4d depth=%-3d gates=%-5d maxGate=%-3d %s (static only)\n",
					d.Name, d.Width(), d.Depth(), d.Size(), d.MaxGateWidth(), summary)
			}
		}
	}

	for _, w := range []int{4, 8, 16} {
		if n, err := countnet.NewBitonic(w); err == nil {
			check(n.Name(), n, true, "")
		}
		if n, err := countnet.NewPeriodic(w); err == nil {
			check(n.Name(), n, true, "")
		}
		if n, err := countnet.NewOddEvenMergeSort(w); err == nil {
			check(n.Name(), n, false, "") // sorts, must NOT count
		}
	}
	for _, w := range []int{4, 5, 6} {
		if n, err := countnet.NewBubble(w); err == nil {
			check(n.Name(), n, false, "")
		}
		if n, err := countnet.NewMergeExchange(w); err == nil {
			check(n.Name(), n, false, "")
		}
	}
	for w := 2; w <= 16; w++ {
		if n, err := countnet.NewOptSorter(w); err == nil {
			checkSort(n.Name(), n, "")
		}
	}

	fmt.Printf("verifyall: %d/%d constructions behaved as specified; %d/%d static proofs held\n",
		total-failures, total, staticTotal-staticFailures, staticTotal)
	if failures > 0 || staticFailures > 0 {
		os.Exit(1)
	}
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
