package main

import (
	"strings"
	"testing"
	"time"
)

// TestParseConfig is the flag-validation table: every rejected line
// must produce an error that carries the usage text (main prints the
// error and exits 2, so the error IS the user's diagnostic), and every
// accepted line must normalize into the expected config.
func TestParseConfig(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		wantErr string // "" = must parse
		check   func(t *testing.T, cfg *config)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, cfg *config) {
				if cfg.Width != 16 || cfg.Engine != "plan" || cfg.Worker {
					t.Fatalf("defaults = %+v", cfg)
				}
				if cfg.Goroutines != nil {
					t.Fatalf("default goroutines = %v, want nil (sweep default)", cfg.Goroutines)
				}
				for _, c := range []string{"atomic", "mutex", "network", "combining"} {
					if !cfg.Counters[c] {
						t.Fatalf("default counters lack %s: %v", c, cfg.Counters)
					}
				}
			},
		},
		{
			name: "explicit lists",
			args: []string{"-counter", "network, combining", "-goroutines", "1,4,16", "-block", "8"},
			check: func(t *testing.T, cfg *config) {
				if len(cfg.Counters) != 2 || !cfg.Counters["network"] || !cfg.Counters["combining"] {
					t.Fatalf("counters = %v", cfg.Counters)
				}
				if len(cfg.Goroutines) != 3 || cfg.Goroutines[2] != 16 {
					t.Fatalf("goroutines = %v", cfg.Goroutines)
				}
				if cfg.Block != 8 {
					t.Fatalf("block = %d", cfg.Block)
				}
			},
		},
		{
			name: "normalization clamps and implications",
			args: []string{"-repeat", "0", "-block", "-2", "-http", ":8720"},
			check: func(t *testing.T, cfg *config) {
				if cfg.Repeat != 1 || cfg.Block != 1 {
					t.Fatalf("clamps: repeat=%d block=%d", cfg.Repeat, cfg.Block)
				}
				if !cfg.Obs {
					t.Fatal("-http must imply -obs")
				}
			},
		},
		{
			name: "sweep defaults to the fixed goroutine ladder",
			args: []string{"-sweep"},
			check: func(t *testing.T, cfg *config) {
				if !cfg.Sweep {
					t.Fatal("-sweep not recorded")
				}
				want := []int{1, 2, 4, 8, 16, 32}
				if len(cfg.Goroutines) != len(want) {
					t.Fatalf("sweep goroutines = %v, want %v", cfg.Goroutines, want)
				}
				for i, g := range want {
					if cfg.Goroutines[i] != g {
						t.Fatalf("sweep goroutines = %v, want %v", cfg.Goroutines, want)
					}
				}
				if !cfg.Counters["adaptive"] {
					t.Fatalf("default counters lack adaptive: %v", cfg.Counters)
				}
			},
		},
		{
			name: "sweep respects explicit goroutines",
			args: []string{"-sweep", "-goroutines", "3,5", "-counter", "adaptive"},
			check: func(t *testing.T, cfg *config) {
				if len(cfg.Goroutines) != 2 || cfg.Goroutines[0] != 3 || cfg.Goroutines[1] != 5 {
					t.Fatalf("goroutines = %v, want [3 5]", cfg.Goroutines)
				}
				if len(cfg.Counters) != 1 || !cfg.Counters["adaptive"] {
					t.Fatalf("counters = %v, want adaptive only", cfg.Counters)
				}
			},
		},
		{
			name: "adaptive is a known counter",
			args: []string{"-counter", "adaptive,atomic"},
			check: func(t *testing.T, cfg *config) {
				if len(cfg.Counters) != 2 || !cfg.Counters["adaptive"] || !cfg.Counters["atomic"] {
					t.Fatalf("counters = %v", cfg.Counters)
				}
			},
		},
		{
			name: "worker mode",
			args: []string{"-worker", "-sync", "http://127.0.0.1:9", "-id", "w3"},
			check: func(t *testing.T, cfg *config) {
				if !cfg.Worker || cfg.SyncURL != "http://127.0.0.1:9" || cfg.WorkerID != "w3" {
					t.Fatalf("worker cfg = %+v", cfg)
				}
			},
		},
		{name: "unknown counter", args: []string{"-counter", "atomic,quantum"}, wantErr: `unknown counter "quantum"`},
		{name: "unknown engine", args: []string{"-engine", "warp"}, wantErr: `unknown engine "warp"`},
		{name: "unknown flag", args: []string{"-frobnicate"}, wantErr: "flag provided but not defined"},
		{name: "positional junk", args: []string{"16"}, wantErr: `unexpected argument "16"`},
		{name: "bad goroutine count", args: []string{"-goroutines", "1,zero"}, wantErr: `bad goroutine count "zero"`},
		{name: "zero goroutine count", args: []string{"-goroutines", "0"}, wantErr: "bad goroutine count"},
		{name: "sweep with worker", args: []string{"-worker", "-sweep", "-sync", "http://x", "-id", "w0"}, wantErr: "-sweep does not apply with -worker"},
		{name: "worker without sync", args: []string{"-worker", "-id", "w0"}, wantErr: "-worker needs -sync"},
		{name: "worker without id", args: []string{"-worker", "-sync", "http://x"}, wantErr: "-worker needs -id"},
		{name: "sync without worker", args: []string{"-sync", "http://x"}, wantErr: "only apply with -worker"},
		{name: "id without worker", args: []string{"-id", "w0"}, wantErr: "only apply with -worker"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseConfig(tc.args)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseConfig(%v) accepted, want error %q", tc.args, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				// main prints this error as the whole diagnostic, so the
				// usage text must ride along.
				if !strings.Contains(err.Error(), "-counter") || !strings.Contains(err.Error(), "-engine") {
					t.Fatalf("error lacks usage text:\n%v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseConfig(%v) = %v", tc.args, err)
			}
			tc.check(t, cfg)
		})
	}
}

// TestParseConfigDuration: time flags parse as durations (spot check
// the stdlib wiring survived the flag-set extraction).
func TestParseConfigDuration(t *testing.T) {
	cfg, err := parseConfig([]string{"-duration", "250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Duration != 250*time.Millisecond {
		t.Fatalf("duration = %v", cfg.Duration)
	}
}
