package main

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestRunSweepEmitsBenchmarkLines: the sweep output must be exactly
// what cmd/benchjson parses — one "BenchmarkCounterSweep/<lane>/g=<g>"
// line per (counter, goroutines) cell, with an integer iteration count
// and value/unit pairs — for every counter mode including adaptive.
func TestRunSweepEmitsBenchmarkLines(t *testing.T) {
	cfg, err := parseConfig([]string{
		"-sweep", "-width", "4", "-duration", "5ms", "-repeat", "1",
		"-goroutines", "1,2", "-counter", "atomic,network,combining,adaptive",
	})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runSweep(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "Benchmark") {
			lines = append(lines, line)
		}
	}
	want := []string{}
	for _, lane := range []string{"atomic", "network", "combining", "adaptive"} {
		for _, g := range []int{1, 2} {
			want = append(want, fmt.Sprintf("BenchmarkCounterSweep/%s/g=%d", lane, g))
		}
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d benchmark lines, want %d:\n%s", len(lines), len(want), out.String())
	}
	for i, line := range lines {
		fields := strings.Fields(line)
		if fields[0] != want[i] {
			t.Fatalf("line %d = %q, want name %q", i, line, want[i])
		}
		// The benchjson parser needs: integer iters, then pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			t.Fatalf("line %d not value/unit shaped: %q", i, line)
		}
		if n, err := strconv.ParseInt(fields[1], 10, 64); err != nil || n < 1 {
			t.Fatalf("line %d iteration count %q invalid: %v", i, fields[1], err)
		}
		if fields[3] != "ns/op" || fields[5] != "vals/sec" {
			t.Fatalf("line %d units = %q", i, line)
		}
		if v, err := strconv.ParseFloat(fields[2], 64); err != nil || v <= 0 {
			t.Fatalf("line %d ns/op %q: measurement missing", i, fields[2])
		}
	}
}

// TestRunSweepBlockSuffix: a block sweep renames every lane so block
// and per-value runs can land in the same benchjson result set.
func TestRunSweepBlockSuffix(t *testing.T) {
	cfg, err := parseConfig([]string{
		"-sweep", "-width", "4", "-duration", "2ms", "-repeat", "1",
		"-goroutines", "1", "-counter", "combining,adaptive", "-block", "64",
	})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runSweep(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	for _, lane := range []string{"combining-block64", "adaptive-block64"} {
		if !strings.Contains(out.String(), "BenchmarkCounterSweep/"+lane+"/g=1") {
			t.Fatalf("missing %s lane:\n%s", lane, out.String())
		}
	}
}

// TestRunSweepInterrupted: a canceled context stops the sweep with its
// error rather than emitting zero-valued cells.
func TestRunSweepInterrupted(t *testing.T) {
	cfg, err := parseConfig([]string{"-sweep", "-width", "4", "-counter", "atomic"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	if err := runSweep(ctx, cfg, &out); err != context.Canceled {
		t.Fatalf("runSweep on canceled ctx = %v, want context.Canceled", err)
	}
	if strings.Contains(out.String(), "BenchmarkCounterSweep") {
		t.Fatalf("canceled sweep still emitted cells:\n%s", out.String())
	}
}
