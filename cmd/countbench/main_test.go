package main

import "testing"

func TestJoin(t *testing.T) {
	if got := join([]int{2, 3, 5}); got != "2x3x5" {
		t.Errorf("join = %q", got)
	}
	if got := join([]int{7}); got != "7" {
		t.Errorf("join = %q", got)
	}
	if got := join(nil); got != "" {
		t.Errorf("join(nil) = %q", got)
	}
}
