package main

// -sweep mode: the same goroutine sweep as the interactive tables, but
// emitted as `go test -bench` style result lines so the output pipes
// straight into cmd/benchjson — this is how BENCH_adaptive.json is
// produced (`make bench-adaptive`). One line per (counter, g) cell:
//
//	BenchmarkCounterSweep/adaptive/g=8 	 12345678 	 5.123 ns/op 	 195200000 vals/sec
//
// ns/op is per value (so block and per-value lanes compare directly)
// and the iteration count is the number of values actually measured.
// Every selected counter runs over the same width-`-width` network —
// the coarsest family member L[width], the strongest static network
// lane in BENCH_counter.json — so the sweep isolates the load axis
// from the width/depth axis the tables explore.

import (
	"context"
	"fmt"
	"io"

	"countnet/internal/bench"
	"countnet/internal/core"
	"countnet/internal/counter"
	"countnet/internal/network"
	"countnet/internal/obs"
	"countnet/internal/stats"
)

// sweepLane is one counter engine in the sweep. mk builds a fresh,
// quiescent counter per measurement window; counters exposing Close
// (the adaptive engine's governor) are closed when the window ends.
type sweepLane struct {
	name string
	mk   func() counter.Counter
}

// sweepLanes assembles the selected lanes in a fixed order. Lane names
// carry a -block<B> suffix when the draw size is not 1, matching the
// BENCH_counter.json convention (a block lane's ns/op is still per
// value, amortized over the block).
func sweepLanes(cfg *config, net *network.Network) []sweepLane {
	suffix := ""
	if cfg.Block > 1 {
		suffix = fmt.Sprintf("-block%d", cfg.Block)
	}
	reg := obs.Default
	if !cfg.Obs {
		// The governor needs the obs signals even when the user did not
		// ask for the obs table; feed it a private registry.
		reg = obs.NewRegistry()
	}
	var lanes []sweepLane
	add := func(name string, mk func() counter.Counter) {
		if cfg.Counters[name] {
			lanes = append(lanes, sweepLane{name: name + suffix, mk: mk})
		}
	}
	add("atomic", func() counter.Counter { return counter.NewAtomicCounter() })
	add("mutex", func() counter.Counter { return counter.NewMutexCounter() })
	add("network", func() counter.Counter { return counter.NewNetworkCounter(net, false) })
	add("network-mutex", func() counter.Counter { return counter.NewNetworkCounter(net, true) })
	add("combining", func() counter.Counter { return counter.NewCombiningCounter(net) })
	add("adaptive", func() counter.Counter {
		c := counter.NewAdaptiveCounter(net, counter.EngineAtomic, nil)
		c.EnableObs("sweep.adaptive"+suffix, reg)
		if err := c.StartGovernor(); err != nil {
			panic(err) // unreachable: obs was just enabled
		}
		return c
	})
	return lanes
}

// runSweep measures every selected lane at every goroutine step and
// writes one benchmark line per cell to w. Cells repeat cfg.Repeat
// times and report the mean rate. An interrupt (ctx) stops the sweep
// after the current window; already-emitted lines stay valid.
func runSweep(ctx context.Context, cfg *config, w io.Writer) error {
	net, err := core.L(cfg.Width)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# countbench -sweep: width %d, block %d, %s\n",
		cfg.Width, cfg.Block, bench.Environment())
	for _, lane := range sweepLanes(cfg, net) {
		for _, g := range cfg.Goroutines {
			phase := fmt.Sprintf("g=%d", g)
			s := stats.Repeat(cfg.Repeat, func() float64 {
				if ctx.Err() != nil {
					return 0
				}
				var rate float64
				obs.Do(lane.name, phase, func() {
					c := lane.mk()
					rate = bench.MeasureCounter(c, bench.ThroughputOptions{
						Goroutines: g, Duration: cfg.Duration, Block: cfg.Block,
						Interrupt: ctx.Done(),
					})
					if cl, ok := c.(interface{ Close() }); ok {
						cl.Close()
					}
				})
				return rate
			})
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// values measured across the repeats; the benchmark line
			// format needs a positive integer iteration count.
			iters := int64(s.Mean * cfg.Duration.Seconds() * float64(cfg.Repeat))
			if iters < 1 {
				iters = 1
			}
			ns := 0.0
			if s.Mean > 0 {
				ns = 1e9 / s.Mean
			}
			fmt.Fprintf(w, "BenchmarkCounterSweep/%s/%s \t%10d\t%12.3f ns/op\t%14.0f vals/sec\n",
				lane.name, phase, iters, ns, s.Mean)
		}
	}
	return nil
}
