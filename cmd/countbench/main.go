// Command countbench measures concurrent Fetch&Increment throughput
// for counting-network counters against centralized baselines — the
// repository's interactive version of the E9 experiment ([9]-style
// contention study).
//
// It also reports batch-sort throughput for the same networks through
// a selectable execution engine (-engine).
//
// Usage:
//
//	countbench                                # default sweep, width 16
//	countbench -width 32 -duration 200ms      # wider network, longer windows
//	countbench -goroutines 1,4,16             # explicit thread counts
//	countbench -counter network,combining     # choose counter engines
//	countbench -counter combining -block 16   # block requests (values/sec)
//	countbench -engine gates                  # sort via the gate-list walker
//	countbench -obs                           # record + print per-balancer metrics
//	countbench -obs -http :8720 -linger       # keep serving /snapshot, /metrics
//
// countbench shuts down cleanly on SIGINT/SIGTERM: the current
// measurement window is interrupted, remaining cells are skipped, the
// observability snapshot (when -obs) is flushed, and the -http
// endpoint is drained before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"countnet/internal/bench"
	"countnet/internal/core"
	"countnet/internal/counter"
	"countnet/internal/factor"
	"countnet/internal/network"
	"countnet/internal/obs"
	"countnet/internal/runner"
	"countnet/internal/stats"
)

func main() {
	var (
		width      = flag.Int("width", 16, "counting network width (all factorizations are swept)")
		duration   = flag.Duration("duration", 100*time.Millisecond, "measurement window per cell")
		goroutines = flag.String("goroutines", "", "comma-separated goroutine counts (default: 1,2,4,... to 2x GOMAXPROCS)")
		counters   = flag.String("counter", "atomic,mutex,network,combining", "comma-separated counter engines: atomic, mutex, network, network-mutex, combining")
		block      = flag.Int("block", 1, "values drawn per operation (NextBlock when > 1); throughput counts values/sec")
		repeat     = flag.Int("repeat", 3, "measurements per cell; cells report mean and relative stddev")
		engine     = flag.String("engine", "plan", "batch-sort engine: gates (gate-list walker), plan (compiled plan), or parallel (layer-parallel plan)")
		sortBatch  = flag.Int("sortbatches", 4096, "batches per batch-sort measurement")
		obsOn      = flag.Bool("obs", false, "record observability metrics for network counters and print the table at exit (docs/OBSERVABILITY.md)")
		httpAddr   = flag.String("http", "", "serve observability endpoints (/snapshot, /metrics, /debug/vars) on this address; implies -obs")
		linger     = flag.Bool("linger", false, "with -http: keep serving after the sweep until interrupted")
	)
	flag.Parse()
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *httpAddr != "" {
		*obsOn = true
	}
	if *repeat < 1 {
		*repeat = 1
	}
	switch *engine {
	case "gates", "plan", "parallel":
	default:
		fmt.Fprintf(os.Stderr, "countbench: unknown engine %q (want gates, plan or parallel)\n", *engine)
		os.Exit(2)
	}
	if *block < 1 {
		*block = 1
	}
	want := map[string]bool{}
	for _, part := range strings.Split(*counters, ",") {
		name := strings.TrimSpace(part)
		switch name {
		case "atomic", "mutex", "network", "network-mutex", "combining":
			want[name] = true
		case "":
		default:
			fmt.Fprintf(os.Stderr, "countbench: unknown counter %q (want atomic, mutex, network, network-mutex or combining)\n", name)
			os.Exit(2)
		}
	}

	steps := bench.DefaultGoroutineSteps()
	if *goroutines != "" {
		steps = steps[:0]
		for _, part := range strings.Split(*goroutines, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "countbench: bad goroutine count %q\n", part)
				os.Exit(2)
			}
			steps = append(steps, v)
		}
	}

	var srv *obs.Server
	if *httpAddr != "" {
		var err error
		srv, err = obs.Default.StartServer(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "countbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "countbench: observability endpoint on http://%s/ (/snapshot, /metrics, /debug/vars)\n", srv.Addr())
	}

	tbl := &bench.Table{
		ID:    "countbench",
		Title: fmt.Sprintf("Fetch&Increment throughput, width %d, block %d (values/sec)", *width, *block),
	}
	tbl.Header = []string{"counter"}
	for _, g := range steps {
		tbl.Header = append(tbl.Header, fmt.Sprintf("g=%d", g))
	}

	// measure sweeps one counter engine across the goroutine steps. mk
	// rebuilds the counter per window (each cell starts quiescent);
	// with -obs every rebuild re-registers under the same group name,
	// replacing the previous window's group, so endpoint scrapes always
	// see the live engine. Each window runs under pprof labels naming
	// the engine and cell, and aborts early once ctx is canceled.
	measure := func(name string, mk func() counter.Counter) {
		row := []interface{}{name}
		for _, g := range steps {
			phase := fmt.Sprintf("g=%d", g)
			s := stats.Repeat(*repeat, func() float64 {
				if ctx.Err() != nil {
					return 0
				}
				var rate float64
				obs.Do(name, phase, func() {
					rate = bench.MeasureCounter(mk(), bench.ThroughputOptions{
						Goroutines: g, Duration: *duration, Block: *block,
						Interrupt: ctx.Done(),
					})
				})
				return rate
			})
			cell := fmt.Sprintf("%.2fM", s.Mean/1e6)
			if *repeat > 1 {
				cell += fmt.Sprintf("±%.0f%%", 100*s.RelStddev())
			}
			row = append(row, cell)
		}
		tbl.AddRow(row...)
	}

	if want["atomic"] {
		measure("atomic", func() counter.Counter { return counter.NewAtomicCounter() })
	}
	if want["mutex"] {
		measure("mutex", func() counter.Counter { return counter.NewMutexCounter() })
	}
	for _, fs := range factor.Factorizations(*width, 2) {
		fs := fs
		net, err := core.L(fs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "countbench:", err)
			os.Exit(1)
		}
		base := fmt.Sprintf("L[%s]", join(fs))
		name := fmt.Sprintf("%s depth=%d bal<=%d", base, net.Depth(), core.MaxFactor(fs))
		if want["network"] {
			measure(name, func() counter.Counter {
				c := counter.NewNetworkCounter(net, false)
				if *obsOn {
					c.EnableObs(base, nil)
				}
				return c
			})
		}
		if want["network-mutex"] {
			measure(name+" (mutex)", func() counter.Counter {
				c := counter.NewNetworkCounter(net, true)
				if *obsOn {
					c.EnableObs(base+".mutex", nil)
				}
				return c
			})
		}
		if want["combining"] {
			measure(name+" (combining)", func() counter.Counter {
				c := counter.NewCombiningCounter(net)
				if *obsOn {
					c.EnableObs(base+".combining", nil)
				}
				return c
			})
		}
	}
	tbl.Fprint(os.Stdout)
	fmt.Println()

	if ctx.Err() == nil {
		sortTbl := &bench.Table{
			ID:     "countbench-sort",
			Title:  fmt.Sprintf("batch-sort throughput, width %d, engine %s (%d batches)", *width, *engine, *sortBatch),
			Header: []string{"network", "depth", "gates", "ns/batch"},
		}
		for _, fs := range factor.Factorizations(*width, 2) {
			net, err := core.L(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "countbench:", err)
				os.Exit(1)
			}
			ns := measureSort(net, *engine, *sortBatch)
			sortTbl.AddRow(fmt.Sprintf("L[%s]", join(fs)), net.Depth(), net.Size(), fmt.Sprint(ns))
		}
		sortTbl.Fprint(os.Stdout)
	}

	if *linger && srv != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "countbench: sweep done; still serving on http://%s/ — interrupt to exit\n", srv.Addr())
		<-ctx.Done()
	}

	// Flush the final observability snapshot before the endpoint goes
	// away, so interrupted soak runs still leave their metrics behind.
	if *obsOn {
		fmt.Println()
		fmt.Print(obs.RenderTable(nil, obs.Default.Snapshot(), 0))
	}
	if srv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "countbench: shutdown:", err)
		}
	}
}

// measureSort pushes `batches` random batches through the network with
// the chosen engine and returns nanoseconds per batch.
func measureSort(net *network.Network, engine string, batches int) int64 {
	rng := rand.New(rand.NewSource(42))
	work := make([][]int64, batches)
	for i := range work {
		work[i] = make([]int64, net.Width())
		for j := range work[i] {
			work[i][j] = int64(rng.Intn(1 << 20))
		}
	}
	start := time.Now()
	switch engine {
	case "gates":
		for _, b := range work {
			runner.ApplyComparators(net, b)
		}
	case "plan":
		runner.CompilePlan(net).ApplyBatches(work, 0)
	case "parallel":
		pl := runner.CompilePlan(net).NewParallel(0)
		defer pl.Close()
		for _, b := range work {
			pl.Apply(b, b)
		}
	}
	return time.Since(start).Nanoseconds() / int64(batches)
}

func join(fs []int) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = strconv.Itoa(f)
	}
	return strings.Join(parts, "x")
}
