// Command countbench measures concurrent Fetch&Increment throughput
// for counting-network counters against centralized baselines — the
// repository's interactive version of the E9 experiment ([9]-style
// contention study).
//
// It also reports batch-sort throughput for the same networks through
// a selectable execution engine (-engine).
//
// Usage:
//
//	countbench                                # default sweep, width 16
//	countbench -width 32 -duration 200ms      # wider network, longer windows
//	countbench -goroutines 1,4,16             # explicit thread counts
//	countbench -counter network,combining     # choose counter engines
//	countbench -counter adaptive              # obs-driven adaptive front-end
//	countbench -counter combining -block 16   # block requests (values/sec)
//	countbench -sweep -goroutines 1,4,16      # benchmark lines for benchjson
//	countbench -engine gates                  # sort via the gate-list walker
//	countbench -obs                           # record + print per-balancer metrics
//	countbench -obs -http :8720 -linger       # keep serving /snapshot, /metrics
//
// countbench shuts down cleanly on SIGINT/SIGTERM: the current
// measurement window is interrupted, remaining cells are skipped, the
// observability snapshot (when -obs) is flushed, and the -http
// endpoint is drained before exit.
//
// With -worker the binary instead becomes a node of the multi-process
// traffic harness: it registers with the sync server given by -sync,
// then executes phase commands from stdin and reports records on
// stdout (the line protocol of internal/harness; docs/TESTING.md,
// "Layer 6"):
//
//	countbench -worker -sync http://127.0.0.1:8123 -id w0
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"countnet/internal/bench"
	"countnet/internal/core"
	"countnet/internal/counter"
	"countnet/internal/factor"
	"countnet/internal/harness"
	"countnet/internal/network"
	"countnet/internal/obs"
	"countnet/internal/runner"
	"countnet/internal/stats"
)

func main() {
	cfg, err := parseConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if cfg.Worker {
		// Harness worker mode: the signal context doubles as the kill
		// switch, so an interrupted run tears workers down the same
		// way the measurement sweep shuts down.
		if err := harness.RunWorker(ctx, os.Stdin, os.Stdout, harness.WorkerOptions{
			ID:      cfg.WorkerID,
			SyncURL: cfg.SyncURL,
		}); err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "countbench:", err)
			os.Exit(1)
		}
		return
	}

	if cfg.Obs {
		// The flight recorder marks every measurement window edge, so a
		// scrape of /debug/flight during a soak shows which cell was
		// running when a metric moved.
		obs.EnableFlight(obs.DefaultFlightSlots)
	}

	var srv *obs.Server
	if cfg.HTTPAddr != "" {
		var err error
		srv, err = obs.Default.StartServer(cfg.HTTPAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "countbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "countbench: observability endpoint on http://%s/ (/snapshot, /metrics, /debug/vars, /debug/flight)\n", srv.Addr())
	}

	if cfg.Sweep {
		if err := runSweep(ctx, cfg, os.Stdout); err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "countbench:", err)
			os.Exit(1)
		}
	} else {
		runTables(ctx, cfg)
	}

	if cfg.Linger && srv != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "countbench: sweep done; still serving on http://%s/ — interrupt to exit\n", srv.Addr())
		<-ctx.Done()
	}

	// Flush the final observability snapshot before the endpoint goes
	// away, so interrupted soak runs still leave their metrics behind.
	if cfg.Obs {
		fmt.Println()
		fmt.Print(obs.RenderTable(nil, obs.Default.Snapshot(), 0))
	}
	if srv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "countbench: shutdown:", err)
		}
	}
}

// runTables is the interactive mode: the Fetch&Increment throughput
// table over every factorization of the width, then the batch-sort
// table.
func runTables(ctx context.Context, cfg *config) {
	width, duration, repeat, block := cfg.Width, cfg.Duration, cfg.Repeat, cfg.Block
	sortBatch := cfg.SortBatch
	want := cfg.Counters

	steps := cfg.Goroutines
	if steps == nil {
		steps = bench.DefaultGoroutineSteps()
	}

	// The adaptive governor reads the obs signals even when the user
	// did not ask for the obs table; give it a private registry then.
	adaptReg := obs.Default
	if !cfg.Obs {
		adaptReg = obs.NewRegistry()
	}

	tbl := &bench.Table{
		ID:    "countbench",
		Title: fmt.Sprintf("Fetch&Increment throughput, width %d, block %d (values/sec)", width, block),
	}
	tbl.Header = []string{"counter"}
	for _, g := range steps {
		tbl.Header = append(tbl.Header, fmt.Sprintf("g=%d", g))
	}

	// measure sweeps one counter engine across the goroutine steps. mk
	// rebuilds the counter per window (each cell starts quiescent);
	// with -obs every rebuild re-registers under the same group name,
	// replacing the previous window's group, so endpoint scrapes always
	// see the live engine. Each window runs under pprof labels naming
	// the engine and cell, and aborts early once ctx is canceled.
	measure := func(name string, mk func() counter.Counter) {
		row := []interface{}{name}
		for _, g := range steps {
			phase := fmt.Sprintf("g=%d", g)
			obs.RecordFlight(obs.FlightPhaseStart, int64(g), int64(block))
			s := stats.Repeat(repeat, func() float64 {
				if ctx.Err() != nil {
					return 0
				}
				var rate float64
				obs.Do(name, phase, func() {
					c := mk()
					rate = bench.MeasureCounter(c, bench.ThroughputOptions{
						Goroutines: g, Duration: duration, Block: block,
						Interrupt: ctx.Done(),
					})
					if cl, ok := c.(interface{ Close() }); ok {
						cl.Close() // stop the adaptive governor
					}
				})
				return rate
			})
			obs.RecordFlight(obs.FlightPhaseEnd, int64(g), int64(s.Mean))
			cell := fmt.Sprintf("%.2fM", s.Mean/1e6)
			if repeat > 1 {
				cell += fmt.Sprintf("±%.0f%%", 100*s.RelStddev())
			}
			row = append(row, cell)
		}
		tbl.AddRow(row...)
	}

	if want["atomic"] {
		measure("atomic", func() counter.Counter { return counter.NewAtomicCounter() })
	}
	if want["mutex"] {
		measure("mutex", func() counter.Counter { return counter.NewMutexCounter() })
	}
	for _, fs := range factor.Factorizations(width, 2) {
		fs := fs
		net, err := core.L(fs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "countbench:", err)
			os.Exit(1)
		}
		base := fmt.Sprintf("L[%s]", join(fs))
		name := fmt.Sprintf("%s depth=%d bal<=%d", base, net.Depth(), core.MaxFactor(fs))
		if want["network"] {
			measure(name, func() counter.Counter {
				c := counter.NewNetworkCounter(net, false)
				if cfg.Obs {
					c.EnableObs(base, nil)
				}
				return c
			})
		}
		if want["network-mutex"] {
			measure(name+" (mutex)", func() counter.Counter {
				c := counter.NewNetworkCounter(net, true)
				if cfg.Obs {
					c.EnableObs(base+".mutex", nil)
				}
				return c
			})
		}
		if want["combining"] {
			measure(name+" (combining)", func() counter.Counter {
				c := counter.NewCombiningCounter(net)
				if cfg.Obs {
					c.EnableObs(base+".combining", nil)
				}
				return c
			})
		}
		if want["adaptive"] {
			measure(name+" (adaptive)", func() counter.Counter {
				c := counter.NewAdaptiveCounter(net, counter.EngineAtomic, nil)
				c.EnableObs(base+".adaptive", adaptReg)
				if err := c.StartGovernor(); err != nil {
					panic(err) // unreachable: obs was just enabled
				}
				return c
			})
		}
	}
	tbl.Fprint(os.Stdout)
	fmt.Println()

	if ctx.Err() == nil {
		sortTbl := &bench.Table{
			ID:     "countbench-sort",
			Title:  fmt.Sprintf("batch-sort throughput, width %d, engine %s (%d batches)", width, cfg.Engine, sortBatch),
			Header: []string{"network", "depth", "gates", "ns/batch"},
		}
		for _, fs := range factor.Factorizations(width, 2) {
			net, err := core.L(fs...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "countbench:", err)
				os.Exit(1)
			}
			ns := measureSort(net, cfg.Engine, sortBatch)
			sortTbl.AddRow(fmt.Sprintf("L[%s]", join(fs)), net.Depth(), net.Size(), fmt.Sprint(ns))
		}
		sortTbl.Fprint(os.Stdout)
	}
}

// measureSort pushes `batches` random batches through the network with
// the chosen engine and returns nanoseconds per batch.
func measureSort(net *network.Network, engine string, batches int) int64 {
	rng := rand.New(rand.NewSource(42))
	work := make([][]int64, batches)
	for i := range work {
		work[i] = make([]int64, net.Width())
		for j := range work[i] {
			work[i][j] = int64(rng.Intn(1 << 20))
		}
	}
	start := time.Now()
	switch engine {
	case "gates":
		for _, b := range work {
			runner.ApplyComparators(net, b)
		}
	case "plan":
		runner.CompilePlan(net).ApplyBatches(work, 0)
	case "parallel":
		pl := runner.CompilePlan(net).NewParallel(0)
		defer pl.Close()
		for _, b := range work {
			pl.Apply(b, b)
		}
	}
	return time.Since(start).Nanoseconds() / int64(batches)
}

func join(fs []int) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = strconv.Itoa(f)
	}
	return strings.Join(parts, "x")
}
