package main

import (
	"bytes"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// config is the parsed, validated countbench invocation. Parsing lives
// apart from main so flag validation is testable: unknown engines and
// counters must be rejected with usage text, not silently skipped.
type config struct {
	// Sweep mode.
	Width      int
	Duration   time.Duration
	Goroutines []int // nil = bench.DefaultGoroutineSteps()
	Counters   map[string]bool
	Block      int
	Repeat     int
	Engine     string
	SortBatch  int
	HTTPAddr   string

	// Worker mode (the multi-process harness's `countbench -worker`;
	// see internal/harness and docs/TESTING.md, "Layer 6").
	SyncURL  string
	WorkerID string

	Sweep  bool
	Obs    bool
	Linger bool
	Worker bool
}

// knownCounters and knownEngines are the accepted flag values; keep
// the usage strings below in sync.
var (
	knownCounters = []string{"atomic", "mutex", "network", "network-mutex", "combining", "adaptive"}
	knownEngines  = []string{"gates", "plan", "parallel"}
)

// sweepGoroutineSteps is the default goroutine ladder for -sweep: the
// fixed g ∈ {1,2,4,8,16,32} grid of BENCH_adaptive.json, machine-
// independent so committed sweeps stay comparable (the table mode's
// default still scales with GOMAXPROCS).
var sweepGoroutineSteps = []int{1, 2, 4, 8, 16, 32}

// parseConfig parses and validates the command line. The returned
// error already includes the flag usage text, so main only prints it
// and exits nonzero.
func parseConfig(args []string) (*config, error) {
	fs := flag.NewFlagSet("countbench", flag.ContinueOnError)
	var usage bytes.Buffer
	fs.SetOutput(&usage)

	cfg := &config{}
	var goroutines, counters string
	fs.IntVar(&cfg.Width, "width", 16, "counting network width (all factorizations are swept)")
	fs.DurationVar(&cfg.Duration, "duration", 100*time.Millisecond, "measurement window per cell")
	fs.StringVar(&goroutines, "goroutines", "", "comma-separated goroutine counts (default: 1,2,4,... to 2x GOMAXPROCS)")
	fs.StringVar(&counters, "counter", "atomic,mutex,network,combining,adaptive",
		"comma-separated counter engines: "+strings.Join(knownCounters, ", "))
	fs.BoolVar(&cfg.Sweep, "sweep", false, "emit one benchmark-format line per (counter, goroutines) cell for cmd/benchjson instead of the tables; default goroutines become 1,2,4,8,16,32 (docs/PERFORMANCE.md)")
	fs.IntVar(&cfg.Block, "block", 1, "values drawn per operation (NextBlock when > 1); throughput counts values/sec")
	fs.IntVar(&cfg.Repeat, "repeat", 3, "measurements per cell; cells report mean and relative stddev")
	fs.StringVar(&cfg.Engine, "engine", "plan", "batch-sort engine: "+strings.Join(knownEngines, ", "))
	fs.IntVar(&cfg.SortBatch, "sortbatches", 4096, "batches per batch-sort measurement")
	fs.BoolVar(&cfg.Obs, "obs", false, "record observability metrics for network counters and print the table at exit (docs/OBSERVABILITY.md)")
	fs.StringVar(&cfg.HTTPAddr, "http", "", "serve observability endpoints (/snapshot, /metrics, /debug/vars) on this address; implies -obs")
	fs.BoolVar(&cfg.Linger, "linger", false, "with -http: keep serving after the sweep until interrupted")
	fs.BoolVar(&cfg.Worker, "worker", false, "run as a traffic-harness worker speaking the line protocol on stdin/stdout (internal/harness)")
	fs.StringVar(&cfg.SyncURL, "sync", "", "with -worker: base URL of the harness sync server")
	fs.StringVar(&cfg.WorkerID, "id", "", "with -worker: this worker's id (e.g. w0)")

	if err := fs.Parse(args); err != nil {
		return nil, fmt.Errorf("%w\n%s", err, usage.String())
	}
	fail := func(format string, a ...any) (*config, error) {
		fs.Usage()
		return nil, fmt.Errorf("countbench: "+format+"\n%s", append(a, usage.String())...)
	}
	if narg := fs.NArg(); narg > 0 {
		return fail("unexpected argument %q", fs.Arg(0))
	}

	if cfg.Worker {
		if cfg.Sweep {
			return fail("-sweep does not apply with -worker")
		}
		if cfg.SyncURL == "" {
			return fail("-worker needs -sync URL")
		}
		if cfg.WorkerID == "" {
			return fail("-worker needs -id")
		}
		return cfg, nil
	}
	if cfg.SyncURL != "" || cfg.WorkerID != "" {
		return fail("-sync and -id only apply with -worker")
	}

	found := false
	for _, e := range knownEngines {
		found = found || cfg.Engine == e
	}
	if !found {
		return fail("unknown engine %q (want %s)", cfg.Engine, strings.Join(knownEngines, ", "))
	}

	cfg.Counters = map[string]bool{}
	for _, part := range strings.Split(counters, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		ok := false
		for _, k := range knownCounters {
			ok = ok || name == k
		}
		if !ok {
			return fail("unknown counter %q (want %s)", name, strings.Join(knownCounters, ", "))
		}
		cfg.Counters[name] = true
	}

	if goroutines != "" {
		for _, part := range strings.Split(goroutines, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				return fail("bad goroutine count %q", part)
			}
			cfg.Goroutines = append(cfg.Goroutines, v)
		}
	}
	if cfg.Sweep && cfg.Goroutines == nil {
		cfg.Goroutines = append([]int(nil), sweepGoroutineSteps...)
	}
	if cfg.Repeat < 1 {
		cfg.Repeat = 1
	}
	if cfg.Block < 1 {
		cfg.Block = 1
	}
	if cfg.HTTPAddr != "" {
		cfg.Obs = true
	}
	return cfg, nil
}
