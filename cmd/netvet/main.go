// Command netvet is the repository's custom static-analysis
// multichecker: repo-specific invariants (false-sharing padding,
// sched-harness determinism, constructor error handling, struct
// packing) enforced at vet time instead of in the nightly soak.
//
// It runs two ways:
//
//	netvet ./...                                # standalone
//	go vet -vettool=$(pwd)/bin/netvet ./...     # as a vet tool
//
// Both are wired into `make lint` and the CI lint job. Analyzer
// semantics and fixture-writing instructions live in docs/TESTING.md;
// the analyzers themselves in internal/analyzers.
package main

import (
	"countnet/internal/analysis"
	"countnet/internal/analyzers"
)

func main() {
	analysis.VetMain(analyzers.All())
}
