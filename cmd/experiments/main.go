// Command experiments regenerates every quantitative claim of the
// paper as a text (or markdown, or CSV) table. See DESIGN.md for the
// experiment index E1..E18 and EXPERIMENTS.md for a recorded run.
//
// Usage:
//
//	experiments                  # full suite to stdout
//	experiments -quick           # smaller sweeps, shorter measurements
//	experiments -run E1,E4       # a subset
//	experiments -markdown        # markdown tables (for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"countnet/internal/bench"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "smaller sweeps and shorter throughput measurements")
		run      = flag.String("run", "", "comma-separated experiment IDs to run (default: all)")
		markdown = flag.Bool("markdown", false, "emit markdown instead of aligned text")
		csv      = flag.Bool("csv", false, "emit CSV (one table after another) instead of aligned text")
		outPath  = flag.String("out", "", "write output to this file instead of stdout")
	)
	flag.Parse()

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	if !*csv && !*markdown {
		fmt.Fprintf(out, "environment: %s\n\n", bench.Environment())
	}
	tables := bench.All(*quick)
	ran := 0
	for _, tbl := range tables {
		if len(want) > 0 && !want[tbl.ID] {
			continue
		}
		ran++
		switch {
		case *markdown:
			fmt.Fprint(out, tbl.Markdown())
		case *csv:
			fmt.Fprintf(out, "# %s: %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
		default:
			tbl.Fprint(out)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matched %q (have E1..E18)\n", *run)
		os.Exit(2)
	}
}
