package main

import (
	"bufio"
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkObsOverhead/traverse_L(4,4)/obs=off-8   1000   100.0 ns/op   0 B/op   0 allocs/op
BenchmarkObsOverhead/traverse_L(4,4)/obs=on-8    1000   150.0 ns/op   0 B/op   0 allocs/op
BenchmarkObsOverhead/combining_L(4,4)/obs=off-8  1000   200.0 ns/op
BenchmarkObsOverhead/lease_L(4,4)/flight=off-8   1000   400.0 ns/op
BenchmarkObsOverhead/lease_L(4,4)/flight=on-8    1000   404.0 ns/op
BenchmarkCounter/plain-8                         1000   50.0 ns/op
PASS
`

func TestParseAndOverheadTable(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("parsed %d results, want 6", len(results))
	}
	if results[0].Name != "BenchmarkObsOverhead/traverse_L(4,4)/obs=off" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", results[0].Name)
	}

	table := overheadTable(results)
	// traverse has both obs lanes and lease both flight lanes;
	// combining lacks obs=on and the plain benchmark has neither, so
	// exactly two pairs form.
	if len(table) != 2 {
		t.Fatalf("overhead table %v, want the traverse and lease pairs", table)
	}
	got, ok := table["BenchmarkObsOverhead/traverse_L(4,4)"]
	if !ok || math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("obs overhead ratio = %v (ok=%v), want 1.5", got, ok)
	}
	got, ok = table["BenchmarkObsOverhead/lease_L(4,4)"]
	if !ok || math.Abs(got-1.01) > 1e-9 {
		t.Fatalf("flight overhead ratio = %v (ok=%v), want 1.01", got, ok)
	}
}
