package main

import (
	"bufio"
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkObsOverhead/traverse_L(4,4)/obs=off-8   1000   100.0 ns/op   0 B/op   0 allocs/op
BenchmarkObsOverhead/traverse_L(4,4)/obs=on-8    1000   150.0 ns/op   0 B/op   0 allocs/op
BenchmarkObsOverhead/combining_L(4,4)/obs=off-8  1000   200.0 ns/op
BenchmarkCounter/plain-8                         1000   50.0 ns/op
PASS
`

func TestParseAndOverheadTable(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	if results[0].Name != "BenchmarkObsOverhead/traverse_L(4,4)/obs=off" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", results[0].Name)
	}

	table := overheadTable(results)
	// Only traverse has both lanes; combining lacks obs=on and the
	// plain benchmark has neither, so exactly one pair forms.
	if len(table) != 1 {
		t.Fatalf("overhead table %v, want exactly the traverse pair", table)
	}
	got, ok := table["BenchmarkObsOverhead/traverse_L(4,4)"]
	if !ok || math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("overhead ratio = %v (ok=%v), want 1.5", got, ok)
	}
}
