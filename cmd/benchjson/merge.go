package main

import (
	"countnet/internal/harness"
)

// mergeWorkerFiles converts the harness's per-worker record files into
// benchmark results: one result per (phase, worker) plus a "/all"
// aggregate per phase, deterministically ordered by name (the harness
// zero-pads phase indices so lexicographic order is run order). The
// multi-process collector path: `scenarios` writes the files, this
// merges them into the BENCH_scenarios.json lane.
func mergeWorkerFiles(paths []string) ([]Result, error) {
	rows, err := harness.MergeFiles(paths)
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(rows))
	for _, row := range rows {
		results = append(results, Result{
			Name:    row.Name,
			NsPerOp: row.NsPerOp,
			Extra:   row.Extra,
		})
	}
	return results, nil
}
