// Command benchjson converts `go test -bench -benchmem` output read
// from stdin into a committed JSON benchmark record.
//
// The output file holds named result sets (typically "baseline" and
// "current"); a run rewrites only the set named by -set and preserves
// every other set already in the file, so a pre-change baseline
// survives post-change refreshes:
//
//	go test -run '^$' -bench ... -benchmem . | benchjson -out BENCH_plan.json -set current
//
// Each result records name (GOMAXPROCS suffix stripped), ns/op, B/op,
// allocs/op, and any extra metrics (e.g. ns/batch) the benchmark
// reported.
//
// With positional arguments, benchjson instead merges multi-process
// harness worker record files (written by `scenarios -out`) into one
// result set — per-(phase,worker) rows plus per-phase aggregates, in
// deterministic order:
//
//	benchjson -out BENCH_scenarios.json -set current /tmp/scen/worker-*.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Set is one named collection of results.
type Set struct {
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
	// Overhead maps a benchmark base name to the obs=on / obs=off
	// ns/op ratio of its pair of lanes (1.00 = instrumentation free;
	// written by -overhead). The obs=off lane is the production
	// default, so the committed off-lane numbers double as the
	// regression guard for the disabled path.
	Overhead map[string]float64 `json:"overhead,omitempty"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_plan.json", "output JSON file (existing sets other than -set are preserved)")
		set      = flag.String("set", "current", "name of the result set to write")
		note     = flag.String("note", "", "free-form note stored with the set")
		overhead = flag.Bool("overhead", false, "pair results differing only in an obs=off/on or flight=off/on suffix and store their ns/op ratios as the set's overhead table")
	)
	flag.Parse()

	var results []Result
	var err error
	if files := flag.Args(); len(files) > 0 {
		if *overhead {
			fmt.Fprintln(os.Stderr, "benchjson: -overhead does not apply to worker-file merges")
			os.Exit(1)
		}
		results, err = mergeWorkerFiles(files)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	} else {
		results, err = parse(bufio.NewScanner(os.Stdin))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	sets := map[string]*Set{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &sets); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s is not a benchmark record: %v\n", *out, err)
			os.Exit(1)
		}
	}
	sets[*set] = &Set{Note: *note, Results: results}
	if *overhead {
		table := overheadTable(results)
		if len(table) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -overhead found no obs=off/obs=on pairs")
			os.Exit(1)
		}
		sets[*set].Overhead = table
		for name, ratio := range table {
			fmt.Fprintf(os.Stderr, "benchjson: overhead %s = %.3f\n", name, ratio)
		}
	}

	data, err := json.MarshalIndent(sets, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s[%q]\n", len(results), *out, *set)
}

// parse extracts benchmark result lines and ignores everything else
// (headers, PASS/ok trailers, log output).
func parse(sc *bufio.Scanner) ([]Result, error) {
	var results []Result
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  v1 unit1  v2 unit2 ...
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		r := Result{Name: stripProcs(fields[0])}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
				ok = true
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		if ok {
			results = append(results, r)
		}
	}
	return results, sc.Err()
}

// overheadTable pairs results whose names differ only in an off/on
// lane component ("obs=off" vs "obs=on", "flight=off" vs "flight=on")
// and maps each base name (the name with the component dropped) to
// the on/off ns/op ratio.
func overheadTable(results []Result) map[string]float64 {
	off := map[string]float64{}
	on := map[string]float64{}
	for _, r := range results {
		for _, dim := range []string{"obs", "flight"} {
			if strings.Contains(r.Name, dim+"=off") {
				off[strings.ReplaceAll(r.Name, dim+"=off", "")] = r.NsPerOp
			}
			if strings.Contains(r.Name, dim+"=on") {
				on[strings.ReplaceAll(r.Name, dim+"=on", "")] = r.NsPerOp
			}
		}
	}
	table := map[string]float64{}
	for base, offNs := range off {
		if onNs, ok := on[base]; ok && offNs > 0 {
			table[strings.TrimSuffix(base, "/")] = onNs / offNs
		}
	}
	return table
}

// stripProcs removes the trailing -GOMAXPROCS suffix from a benchmark
// name, so records compare across machines.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
