package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden merged table")

// TestMergeWorkerFilesGolden pins the merge of the fixture worker
// files byte-for-byte: per-(phase,worker) rows plus per-phase "/all"
// aggregates, deterministically ordered by name. Regenerate with
// `go test ./cmd/benchjson -run Golden -update` after a deliberate
// format change.
func TestMergeWorkerFilesGolden(t *testing.T) {
	paths := fixturePaths(t)
	results, err := mergeWorkerFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	golden := filepath.Join("testdata", "merged.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(data) != string(want) {
		t.Fatalf("merged table drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, data, want)
	}
}

// TestMergeWorkerFilesOrderIndependent: shuffling the argument order
// must not change the merged table — the property that lets
// `benchjson worker-*.json` rely on shell glob order being irrelevant.
func TestMergeWorkerFilesOrderIndependent(t *testing.T) {
	paths := fixturePaths(t)
	a, err := mergeWorkerFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mergeWorkerFiles([]string{paths[1], paths[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].NsPerOp != b[i].NsPerOp {
			t.Fatalf("row %d differs across input orders: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestMergeWorkerFilesErrors: unreadable and duplicate inputs are
// refused loudly.
func TestMergeWorkerFilesErrors(t *testing.T) {
	if _, err := mergeWorkerFiles([]string{filepath.Join("testdata", "absent.json")}); err == nil {
		t.Fatal("absent file merged")
	}
	paths := fixturePaths(t)
	if _, err := mergeWorkerFiles([]string{paths[0], paths[0]}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate input: err = %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeWorkerFiles([]string{bad}); err == nil {
		t.Fatal("malformed file merged")
	}
}

func fixturePaths(t *testing.T) []string {
	t.Helper()
	paths := []string{
		filepath.Join("testdata", "worker-demo-w0.json"),
		filepath.Join("testdata", "worker-demo-w1.json"),
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}
