// Command netmon attaches to one or more running observability
// endpoints (e.g. `countbench -obs -http=:8720 -linger`, or any
// process serving countnet.ObsHandler) and renders a live per-layer
// contention and throughput table: tokens per balancer layer, rates
// over the refresh interval, the share of the busiest balancer,
// contention events, and the operation latency histograms. Adaptive
// counter groups also show the strategy gauges — active engine,
// switch count, last switch reason, load estimate, governed combining
// block. See docs/OBSERVABILITY.md for how to read the table against
// the paper's contention model.
//
// Usage:
//
//	netmon -addr localhost:8720                # refresh every second
//	netmon -addr localhost:8720 -interval 250ms -count 20
//	netmon -addr localhost:8720 -once          # one snapshot, no deltas
//	netmon -addr localhost:8720 -once -validate # smoke-check the endpoint
//	netmon -fleet host1:8720,host2:8720        # merged fleet view
//
// With -fleet, every endpoint is scraped each interval, each group is
// tagged with the endpoint it came from, and the snapshots are folded
// with obs.Merge into one fleet table — counters and histogram
// buckets sum across processes, watermarks take min/max, and the
// Origin column names the contributors. Endpoints that fail a scrape
// are skipped for that round (their metrics simply don't contribute);
// netmon only gives up when every endpoint has been failing for
// -timeout, retrying with exponential backoff in between.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"countnet/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8720", "host:port of the observability endpoint")
		fleet    = flag.String("fleet", "", "comma-separated host:port list; scrape all and render one merged fleet table (overrides -addr)")
		interval = flag.Duration("interval", time.Second, "refresh interval (delta rates cover one interval)")
		count    = flag.Int("count", 0, "number of refreshes, 0 = until interrupted")
		once     = flag.Bool("once", false, "take a single snapshot and exit (no delta column)")
		validate = flag.Bool("validate", false, "also verify /snapshot, /metrics, /debug/vars and /debug/flight payload shapes; exit non-zero on mismatch")
		timeout  = flag.Duration("timeout", 5*time.Second, "tolerated window of consecutive scrape failures (also bounds the first scrape)")
	)
	flag.Parse()
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	targets := parseTargets(*addr, *fleet)
	client := &http.Client{Timeout: 2 * time.Second}

	cur, err := scrapeRetry(ctx, client, targets, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netmon:", err)
		os.Exit(1)
	}
	if *validate {
		for _, tgt := range targets {
			if err := validateEndpoint(client, tgt.base, cur); err != nil {
				fmt.Fprintf(os.Stderr, "netmon: validate %s: %v\n", tgt.name, err)
				os.Exit(1)
			}
		}
		fmt.Fprintln(os.Stderr, "netmon: endpoint payloads OK")
	}
	if len(targets) > 1 {
		fmt.Printf("== fleet: %d endpoints ==\n", len(targets))
	}
	fmt.Print(obs.RenderTable(nil, *cur, 0))
	if *once {
		return
	}

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	prev := cur
	for n := 1; *count == 0 || n < *count; n++ {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		next, err := scrapeRetry(ctx, client, targets, *timeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmon:", err)
			os.Exit(1)
		}
		elapsed := time.Duration(next.TakenUnixNano-prev.TakenUnixNano) * time.Nanosecond
		fmt.Println()
		fmt.Print(obs.RenderTable(prev, *next, elapsed))
		prev = next
	}
}

// target is one monitored endpoint. name tags the groups it
// contributes (the Origin column of the merged table).
type target struct {
	name string
	base string
}

// parseTargets builds the endpoint list: the -fleet list when given,
// else the single -addr.
func parseTargets(addr, fleet string) []target {
	var out []target
	if fleet == "" {
		return []target{{name: addr, base: "http://" + addr}}
	}
	for _, a := range strings.Split(fleet, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		out = append(out, target{name: a, base: "http://" + a})
	}
	return out
}

// scrapeRetry scrapes the fleet until at least one endpoint answers,
// retrying with exponential backoff (100ms doubling to 2s) while the
// whole fleet is unreachable, and giving up only once the failure
// window exceeds timeout. A transient single-endpoint blip therefore
// never kills a long-running watch: the endpoint just sits out the
// rounds it misses.
func scrapeRetry(ctx context.Context, client *http.Client, targets []target, timeout time.Duration) (*obs.Snapshot, error) {
	deadline := time.Now().Add(timeout)
	backoff := 100 * time.Millisecond
	for {
		s, err := scrapeFleet(client, targets)
		if err == nil {
			return s, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("no snapshot within %v: %w", timeout, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// scrapeFleet scrapes every target and merges the snapshots, tagging
// each endpoint's groups with its name. Unreachable endpoints are
// skipped; it fails only when none answered.
func scrapeFleet(client *http.Client, targets []target) (*obs.Snapshot, error) {
	var snaps []*obs.Snapshot
	var lastErr error
	for _, tgt := range targets {
		s, err := scrape(client, tgt.base)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", tgt.name, err)
			continue
		}
		s.TagOrigin(tgt.name)
		snaps = append(snaps, s)
	}
	if len(snaps) == 0 {
		return nil, lastErr
	}
	if len(targets) == 1 {
		// Single-endpoint mode renders the snapshot verbatim (no
		// canonicalization, no origin tagging of the table).
		return snaps[0], nil
	}
	return obs.MergeAll(snaps...), nil
}

func scrape(client *http.Client, base string) (*obs.Snapshot, error) {
	body, err := get(client, base+"/snapshot")
	if err != nil {
		return nil, err
	}
	var s obs.Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return nil, fmt.Errorf("/snapshot: %w", err)
	}
	return &s, nil
}

// validateEndpoint smoke-checks all four exposition endpoints — used
// by `make obs-smoke` to gate CI on the endpoint actually serving
// well-formed payloads.
func validateEndpoint(client *http.Client, base string, snap *obs.Snapshot) error {
	if len(snap.Groups) == 0 {
		return fmt.Errorf("/snapshot has no observed groups (is the target running with -obs?)")
	}
	if snap.TakenUnixNano == 0 {
		return fmt.Errorf("/snapshot is not timestamped")
	}
	for _, g := range snap.Groups {
		if g.Name == "" || g.Kind == "" {
			return fmt.Errorf("/snapshot group missing name or kind: %+v", g)
		}
	}

	body, err := get(client, base+"/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(string(body), "countnet_") {
		return fmt.Errorf("/metrics has no countnet_ series")
	}

	body, err = get(client, base+"/debug/vars")
	if err != nil {
		return err
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		return fmt.Errorf("/debug/vars: %w", err)
	}

	body, err = get(client, base+"/debug/flight")
	if err != nil {
		return err
	}
	var flight struct {
		Enabled bool              `json:"enabled"`
		NextSeq uint64            `json:"next_seq"`
		Events  []obs.FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(body, &flight); err != nil {
		return fmt.Errorf("/debug/flight: %w", err)
	}
	if flight.Enabled && uint64(len(flight.Events)) > flight.NextSeq {
		return fmt.Errorf("/debug/flight reports %d events past next_seq %d", len(flight.Events), flight.NextSeq)
	}
	for i := 1; i < len(flight.Events); i++ {
		if flight.Events[i].Seq <= flight.Events[i-1].Seq {
			return fmt.Errorf("/debug/flight events out of order at %d", i)
		}
	}
	return nil
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
