// Command netmon attaches to a running observability endpoint (e.g.
// `countbench -obs -http=:8720 -linger`, or any process serving
// countnet.ObsHandler) and renders a live per-layer contention and
// throughput table: tokens per balancer layer, rates over the refresh
// interval, the share of the busiest balancer, contention events, and
// the operation latency histograms. Adaptive counter groups also show
// the strategy gauges — active engine, switch count, last switch
// reason, load estimate, governed combining block. See
// docs/OBSERVABILITY.md for how to read the table against the paper's
// contention model.
//
// Usage:
//
//	netmon -addr localhost:8720                # refresh every second
//	netmon -addr localhost:8720 -interval 250ms -count 20
//	netmon -addr localhost:8720 -once          # one snapshot, no deltas
//	netmon -addr localhost:8720 -once -validate # smoke-check the endpoint
//
// netmon retries the first scrape until -timeout, so it can be started
// before (or while) the monitored process comes up.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"countnet/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8720", "host:port of the observability endpoint")
		interval = flag.Duration("interval", time.Second, "refresh interval (delta rates cover one interval)")
		count    = flag.Int("count", 0, "number of refreshes, 0 = until interrupted")
		once     = flag.Bool("once", false, "take a single snapshot and exit (no delta column)")
		validate = flag.Bool("validate", false, "also verify /snapshot, /metrics and /debug/vars payload shapes; exit non-zero on mismatch")
		timeout  = flag.Duration("timeout", 5*time.Second, "time to keep retrying the first scrape")
	)
	flag.Parse()
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	base := "http://" + *addr
	client := &http.Client{Timeout: 2 * time.Second}

	cur, err := scrapeFirst(ctx, client, base, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netmon:", err)
		os.Exit(1)
	}
	if *validate {
		if err := validateEndpoint(client, base, cur); err != nil {
			fmt.Fprintln(os.Stderr, "netmon: validate:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "netmon: endpoint payloads OK")
	}
	fmt.Print(obs.RenderTable(nil, *cur, 0))
	if *once {
		return
	}

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	prev := cur
	for n := 1; *count == 0 || n < *count; n++ {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		next, err := scrape(client, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netmon:", err)
			os.Exit(1)
		}
		elapsed := time.Duration(next.TakenUnixNano-prev.TakenUnixNano) * time.Nanosecond
		fmt.Println()
		fmt.Print(obs.RenderTable(prev, *next, elapsed))
		prev = next
	}
}

// scrapeFirst retries the snapshot scrape until deadline so netmon can
// start before the monitored process finishes binding its endpoint.
func scrapeFirst(ctx context.Context, client *http.Client, base string, timeout time.Duration) (*obs.Snapshot, error) {
	deadline := time.Now().Add(timeout)
	for {
		s, err := scrape(client, base)
		if err == nil {
			return s, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("no snapshot from %s within %v: %w", base, timeout, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func scrape(client *http.Client, base string) (*obs.Snapshot, error) {
	body, err := get(client, base+"/snapshot")
	if err != nil {
		return nil, err
	}
	var s obs.Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return nil, fmt.Errorf("/snapshot: %w", err)
	}
	return &s, nil
}

// validateEndpoint smoke-checks all three exposition formats — used by
// `make obs-smoke` to gate CI on the endpoint actually serving
// well-formed payloads.
func validateEndpoint(client *http.Client, base string, snap *obs.Snapshot) error {
	if len(snap.Groups) == 0 {
		return fmt.Errorf("/snapshot has no observed groups (is the target running with -obs?)")
	}
	if snap.TakenUnixNano == 0 {
		return fmt.Errorf("/snapshot is not timestamped")
	}
	for _, g := range snap.Groups {
		if g.Name == "" || g.Kind == "" {
			return fmt.Errorf("/snapshot group missing name or kind: %+v", g)
		}
	}

	body, err := get(client, base+"/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(string(body), "countnet_") {
		return fmt.Errorf("/metrics has no countnet_ series")
	}

	body, err = get(client, base+"/debug/vars")
	if err != nil {
		return err
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		return fmt.Errorf("/debug/vars: %w", err)
	}
	return nil
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
