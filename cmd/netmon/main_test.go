package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"countnet/internal/obs"
)

// staticSource serves a fixed group snapshot — a stand-in for a
// worker's observed engine.
type staticSource struct {
	name string
	ops  int64
}

func (s staticSource) GroupSnapshot() obs.GroupSnapshot {
	return obs.GroupSnapshot{
		Name:     s.name,
		Kind:     "counter",
		Counters: []obs.Metric{{Name: "ops", Value: s.ops}},
	}
}

// startEndpoint serves a one-source registry over httptest and returns
// its host:port (the form -addr and -fleet take).
func startEndpoint(t *testing.T, src obs.Source) string {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Register(src.GroupSnapshot().Name, src)
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestParseTargets(t *testing.T) {
	got := parseTargets("localhost:8720", "")
	if len(got) != 1 || got[0].name != "localhost:8720" || got[0].base != "http://localhost:8720" {
		t.Fatalf("single-addr targets = %+v", got)
	}
	got = parseTargets("ignored:1", "a:1, b:2,,c:3")
	if len(got) != 3 || got[0].name != "a:1" || got[1].name != "b:2" || got[2].name != "c:3" {
		t.Fatalf("fleet targets = %+v", got)
	}
}

// TestScrapeFleetMerges: two endpoints must fold into one snapshot
// with summed counters and both origins named.
func TestScrapeFleetMerges(t *testing.T) {
	a := startEndpoint(t, staticSource{name: "net", ops: 10})
	b := startEndpoint(t, staticSource{name: "net", ops: 32})
	client := &http.Client{Timeout: time.Second}
	targets := parseTargets("", a+","+b)

	s, err := scrapeFleet(client, targets)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Group("net")
	if g == nil {
		t.Fatalf("merged snapshot lost the group: %+v", s)
	}
	if len(g.Counters) != 1 || g.Counters[0].Name != "ops" || g.Counters[0].Value != 42 {
		t.Fatalf("merged counters = %+v, want ops=42", g.Counters)
	}
	origins := []string{a, b}
	sort.Strings(origins)
	if g.Origin != strings.Join(origins, ",") {
		t.Fatalf("merged Origin = %q, want %q", g.Origin, strings.Join(origins, ","))
	}
	if !strings.Contains(obs.RenderTable(nil, *s, 0), "ops") {
		t.Fatal("merged snapshot does not render")
	}
}

// TestScrapeFleetToleratesPartialFailure: a dead endpoint must not
// take the fleet view down as long as one endpoint answers.
func TestScrapeFleetToleratesPartialFailure(t *testing.T) {
	live := startEndpoint(t, staticSource{name: "net", ops: 7})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close() // connection refused from here on
	client := &http.Client{Timeout: time.Second}

	s, err := scrapeFleet(client, parseTargets("", live+","+deadAddr))
	if err != nil {
		t.Fatalf("fleet scrape failed with one live endpoint: %v", err)
	}
	g := s.Group("net")
	if g == nil || g.Counters[0].Value != 7 {
		t.Fatalf("snapshot = %+v, want the live endpoint's ops=7", s)
	}
	if g.Origin != live {
		t.Fatalf("Origin = %q, want only the live endpoint %q", g.Origin, live)
	}

	if _, err := scrapeFleet(client, parseTargets("", deadAddr)); err == nil {
		t.Fatal("all-dead fleet scrape reported success")
	}
}

// TestScrapeRetryRecovers: an endpoint that fails its first requests
// must be retried with backoff rather than killing the watch.
func TestScrapeRetryRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Register("net", staticSource{name: "net", ops: 3})
	inner := reg.Handler()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	client := &http.Client{Timeout: time.Second}
	targets := parseTargets(strings.TrimPrefix(srv.URL, "http://"), "")

	s, err := scrapeRetry(context.Background(), client, targets, 10*time.Second)
	if err != nil {
		t.Fatalf("retry gave up on a recovering endpoint: %v", err)
	}
	if g := s.Group("net"); g == nil || g.Counters[0].Value != 3 {
		t.Fatalf("snapshot after recovery = %+v", s)
	}
	if n := calls.Load(); n < 3 {
		t.Fatalf("endpoint saw %d requests, want >= 3 (two failures plus success)", n)
	}
}

// TestScrapeRetryGivesUp: a permanently dead endpoint must fail after
// the timeout window, not hang, and a canceled context must stop the
// backoff loop early.
func TestScrapeRetryGivesUp(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	addr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close()
	client := &http.Client{Timeout: time.Second}
	targets := parseTargets(addr, "")

	start := time.Now()
	if _, err := scrapeRetry(context.Background(), client, targets, 300*time.Millisecond); err == nil {
		t.Fatal("dead endpoint reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ran %v past a 300ms window", elapsed)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := scrapeRetry(ctx, client, targets, time.Hour); err != context.Canceled {
		t.Fatalf("canceled retry returned %v, want context.Canceled", err)
	}
}

// TestValidateEndpoint exercises the full -validate pass, including
// the /debug/flight payload shape with the recorder both off and on.
func TestValidateEndpoint(t *testing.T) {
	obs.DisableFlight()
	t.Cleanup(obs.DisableFlight)
	addr := startEndpoint(t, staticSource{name: "net", ops: 5})
	client := &http.Client{Timeout: time.Second}
	base := "http://" + addr

	snap, err := scrape(client, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := validateEndpoint(client, base, snap); err != nil {
		t.Fatalf("validate with recorder off: %v", err)
	}

	obs.EnableFlight(64)
	obs.RecordFlight(obs.FlightPhaseStart, 0, 2)
	obs.RecordFlight(obs.FlightBlockLease, 8, 4)
	if err := validateEndpoint(client, base, snap); err != nil {
		t.Fatalf("validate with recorder on: %v", err)
	}

	if err := validateEndpoint(client, base, &obs.Snapshot{TakenUnixNano: 1}); err == nil {
		t.Fatal("group-less snapshot validated")
	}
}
