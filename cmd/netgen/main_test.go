package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseFactors(t *testing.T) {
	got, err := parseFactors("2, 3 ,5")
	if err != nil || !reflect.DeepEqual(got, []int{2, 3, 5}) {
		t.Errorf("parseFactors = %v, %v", got, err)
	}
	for _, bad := range []string{"", "2,x", "2,,3"} {
		if _, err := parseFactors(bad); err == nil {
			t.Errorf("parseFactors(%q) accepted", bad)
		}
	}
}

func TestBuildDispatch(t *testing.T) {
	cases := []struct {
		family  string
		factors string
		p, q, w int
		wantW   int
		wantErr bool
	}{
		{family: "L", factors: "2,3", wantW: 6},
		{family: "k", factors: "4,4", wantW: 16},
		{family: "R", p: 3, q: 5, wantW: 15},
		{family: "bitonic", w: 8, wantW: 8},
		{family: "periodic", w: 4, wantW: 4},
		{family: "oddeven", w: 16, wantW: 16},
		{family: "bubble", w: 5, wantW: 5},
		{family: "K", wantErr: true}, // missing factors
		{family: "R", p: 1, q: 5, wantErr: true},
		{family: "bitonic", wantErr: true}, // missing width
		{family: "nonsense", w: 4, wantErr: true},
		{family: "L", factors: "1,2", wantErr: true},
	}
	for _, c := range cases {
		n, err := build(c.family, c.factors, c.p, c.q, c.w)
		if c.wantErr {
			if err == nil {
				t.Errorf("build(%q,%q,%d,%d,%d) accepted", c.family, c.factors, c.p, c.q, c.w)
			}
			continue
		}
		if err != nil {
			t.Errorf("build(%q,...): %v", c.family, err)
			continue
		}
		if n.Width() != c.wantW {
			t.Errorf("build(%q,...) width %d, want %d", c.family, n.Width(), c.wantW)
		}
	}
}

func TestBuildCustom(t *testing.T) {
	n, err := buildCustom("2,3,2", "R", "opt-bitonic")
	if err != nil {
		t.Fatal(err)
	}
	if n.Width() != 12 || n.MaxBalancerWidth() > 3 {
		t.Errorf("custom L-alike: %v", n)
	}
	k, err := buildCustom("2,3,2", "balancer", "opt-base")
	if err != nil {
		t.Fatal(err)
	}
	if k.Depth() != 5 {
		t.Errorf("custom K-alike depth %d", k.Depth())
	}
	for _, bad := range [][2]string{{"x", "opt-base"}, {"balancer", "x"}} {
		if _, err := buildCustom("2,2", bad[0], bad[1]); err == nil {
			t.Errorf("buildCustom(%v) accepted", bad)
		}
	}
	if _, err := buildCustom("", "balancer", "basic"); err == nil {
		t.Error("missing factors accepted")
	}
	for _, sc := range []string{"basic", "basic-sub"} {
		if _, err := buildCustom("2,2,2", "balancer", sc); err != nil {
			t.Errorf("staircase %s: %v", sc, err)
		}
	}
}

func TestBuildMergeX(t *testing.T) {
	n, err := build("mergex", "", 0, 0, 10)
	if err != nil || n.Width() != 10 {
		t.Errorf("mergex: %v %v", n, err)
	}
}

func TestLoadNetwork(t *testing.T) {
	dir := t.TempDir()
	n, err := build("L", "2,3", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "net.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := loadNetwork(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Width() != 6 || back.Depth() != n.Depth() {
		t.Errorf("loaded network mismatch: %v", back)
	}
	if _, err := loadNetwork(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"width":2,"gates":[{"wires":[0,0]}]}`), 0o644)
	if _, err := loadNetwork(bad); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestVerdict(t *testing.T) {
	if verdict(nil) != "PASS" {
		t.Error("nil verdict")
	}
	n, _ := build("bubble", "", 0, 0, 4)
	if v := verdict(n.VerifyCounting(1)); v == "PASS" {
		t.Error("bubble counting verdict should fail")
	}
}
