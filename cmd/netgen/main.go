// Command netgen constructs a sorting/counting network and reports its
// structure: width, depth, gate statistics, and optionally a Graphviz
// DOT diagram, an ASCII layer listing, or a JSON serialization.
//
// Usage:
//
//	netgen -family L -factors 2,3,5            # stats for L(2,3,5)
//	netgen -family K -factors 4,4 -ascii       # layer diagram
//	netgen -family R -p 7 -q 9 -dot > r.dot    # Graphviz
//	netgen -family bitonic -width 16 -verify   # baseline + verification
//	netgen -family L -factors 2,3 -json        # machine-readable
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"countnet"
)

func main() {
	var (
		family  = flag.String("family", "L", "network family: K, L, R, custom, bitonic, periodic, oddeven, mergex, bubble")
		load    = flag.String("load", "", "load a network from a JSON file instead of constructing one")
		base    = flag.String("base", "balancer", "custom family: base network, balancer or R")
		sc      = flag.String("staircase", "opt-base", "custom family: staircase variant, opt-base, opt-bitonic, basic, basic-sub")
		factors = flag.String("factors", "", "comma-separated factorization for K/L, e.g. 2,3,5")
		p       = flag.Int("p", 0, "p for R(p,q)")
		q       = flag.Int("q", 0, "q for R(p,q)")
		width   = flag.Int("width", 0, "width for bitonic/periodic/oddeven/bubble")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT to stdout")
		ascii   = flag.Bool("ascii", false, "emit an ASCII layer listing")
		diagram = flag.Bool("diagram", false, "draw the network figure-style (wires and gate dots)")
		verilog = flag.Int("verilog", 0, "emit a Verilog sorting module with this data width (2-comparator networks only)")
		text    = flag.Bool("text", false, "emit the compact layer notation (0:1 2:3 per line)")
		asJSON  = flag.Bool("json", false, "emit the network as JSON")
		verify  = flag.Bool("verify", false, "run the counting and sorting verification batteries")
		seed    = flag.Int64("seed", 1, "verification RNG seed")
		trace   = flag.String("trace", "", "comma-separated entry wires; trace those tokens through the network (FIFO schedule)")
	)
	flag.Parse()

	var net *countnet.Network
	var err error
	if *load != "" {
		net, err = loadNetwork(*load)
	} else if strings.EqualFold(*family, "custom") {
		net, err = buildCustom(*factors, *base, *sc)
	} else {
		net, err = build(*family, *factors, *p, *q, *width)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(2)
	}

	switch {
	case *verilog > 0:
		src, err := net.Verilog("", *verilog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(2)
		}
		fmt.Print(src)
	case *dot:
		fmt.Print(net.DOT())
	case *text:
		fmt.Print(net.FormatText())
	case *diagram:
		fmt.Print(net.Diagram())
	case *ascii:
		fmt.Print(net.ASCII())
	case *asJSON:
		data, err := json.MarshalIndent(net, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	default:
		printStats(net)
	}

	if *verify {
		fmt.Printf("counting battery: %s\n", verdict(net.VerifyCounting(*seed)))
		fmt.Printf("sorting battery:  %s\n", verdict(net.VerifySorting(*seed)))
	}

	if *trace != "" {
		entries, err := parseFactors(*trace) // same comma-separated form
		if err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(2)
		}
		rendered, err := net.TraceTokens(entries)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(2)
		}
		fmt.Print(rendered)
	}
}

func buildCustom(factorsArg, baseArg, scArg string) (*countnet.Network, error) {
	fs, err := parseFactors(factorsArg)
	if err != nil {
		return nil, err
	}
	var opt countnet.Options
	switch strings.ToLower(baseArg) {
	case "balancer":
		opt.Base = countnet.BaseBalancer
	case "r":
		opt.Base = countnet.BaseR
	default:
		return nil, fmt.Errorf("unknown base %q (balancer, R)", baseArg)
	}
	switch strings.ToLower(scArg) {
	case "opt-base":
		opt.Staircase = countnet.StaircaseOptimizedBase
	case "opt-bitonic":
		opt.Staircase = countnet.StaircaseOptimizedBitonic
	case "basic":
		opt.Staircase = countnet.StaircaseBasic
	case "basic-sub":
		opt.Staircase = countnet.StaircaseBasicSubstituted
	default:
		return nil, fmt.Errorf("unknown staircase %q (opt-base, opt-bitonic, basic, basic-sub)", scArg)
	}
	return countnet.NewCustom(opt, fs...)
}

func loadNetwork(path string) (*countnet.Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var net countnet.Network
	if err := json.Unmarshal(data, &net); err != nil {
		return nil, fmt.Errorf("decoding %s: %v", path, err)
	}
	return &net, nil
}

func verdict(err error) string {
	if err == nil {
		return "PASS"
	}
	return "FAIL — " + err.Error()
}

func build(family, factorsArg string, p, q, width int) (*countnet.Network, error) {
	switch strings.ToUpper(family) {
	case "K", "L":
		fs, err := parseFactors(factorsArg)
		if err != nil {
			return nil, err
		}
		if strings.ToUpper(family) == "K" {
			return countnet.NewK(fs...)
		}
		return countnet.NewL(fs...)
	case "R":
		if p < 2 || q < 2 {
			return nil, fmt.Errorf("family R needs -p and -q (>= 2)")
		}
		return countnet.NewR(p, q)
	}
	if width < 1 {
		return nil, fmt.Errorf("family %s needs -width", family)
	}
	switch strings.ToLower(family) {
	case "bitonic":
		return countnet.NewBitonic(width)
	case "periodic":
		return countnet.NewPeriodic(width)
	case "oddeven":
		return countnet.NewOddEvenMergeSort(width)
	case "mergex":
		return countnet.NewMergeExchange(width)
	case "bubble":
		return countnet.NewBubble(width)
	}
	return nil, fmt.Errorf("unknown family %q", family)
}

func parseFactors(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("families K and L need -factors, e.g. -factors 2,3,5")
	}
	parts := strings.Split(s, ",")
	fs := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad factor %q: %v", part, err)
		}
		fs = append(fs, v)
	}
	return fs, nil
}

func printStats(net *countnet.Network) {
	fmt.Printf("network:   %s\n", net.Name())
	fmt.Printf("width:     %d\n", net.Width())
	fmt.Printf("depth:     %d\n", net.Depth())
	fmt.Printf("gates:     %d\n", net.Size())
	fmt.Printf("max gate:  %d\n", net.MaxBalancerWidth())
	hist := net.BalancerWidthHistogram()
	widths := make([]int, 0, len(hist))
	for w := range hist {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	for _, w := range widths {
		fmt.Printf("  width-%d gates: %d\n", w, hist[w])
	}
}
