package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGeneratedKernelsCurrent is the in-tree drift gate: the committed
// internal/runner/zkernels.go must byte-match what Generate() produces
// from the current internal/optnet table. A table edit without
// `go generate ./internal/runner` (or `make generate`) fails here —
// inside plain `go test ./...`, not only in CI's generate-check step.
func TestGeneratedKernelsCurrent(t *testing.T) {
	want, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "internal", "runner", "zkernels.go")
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s is stale: regenerate with `go generate ./internal/runner` (or `make generate`)", path)
	}
}

// TestGenerateDeterministic guards reproducibility of the generator
// itself — two runs must emit identical bytes.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Generate() is not deterministic")
	}
}
