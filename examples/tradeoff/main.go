// Trade-off explorer: the paper's headline flexibility. A width w has
// one network per factorization; coarse factorizations (few, large
// factors) give shallow networks of wide balancers, fine factorizations
// (many small factors) give deep networks of narrow balancers. This
// example prints the whole family for a width and sanity-checks each
// member end to end.
//
//	go run ./examples/tradeoff          # width 720
//	go run ./examples/tradeoff 96       # custom width
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"countnet"
)

func main() {
	width := 720 // 2*2*2*2*3*3*5: a rich factorization lattice
	if len(os.Args) > 1 {
		w, err := strconv.Atoi(os.Args[1])
		if err != nil || w < 2 {
			log.Fatalf("usage: tradeoff [width>=2]; got %q", os.Args[1])
		}
		width = w
	}

	fss := countnet.Factorizations(width)
	fmt.Printf("width %d has %d factorizations; the family L gives:\n\n", width, len(fss))
	fmt.Printf("%-28s %8s %8s %12s %10s\n", "factorization", "n", "depth", "balancer<=", "gates")

	type entry struct {
		fs    []int
		depth int
		maxB  int
	}
	var entries []entry
	for _, fs := range fss {
		net, err := countnet.NewL(fs...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8d %8d %12d %10d\n", fmt.Sprint(fs), len(fs), net.Depth(), net.MaxBalancerWidth(), net.Size())
		entries = append(entries, entry{fs, net.Depth(), net.MaxBalancerWidth()})
	}

	// Verify a sample of the family actually counts (full verification
	// of hundreds of networks would take a while; the test suite does
	// the exhaustive version).
	fmt.Println("\nspot verification:")
	for _, i := range []int{0, len(entries) / 2, len(entries) - 1} {
		fs := entries[i].fs
		net, err := countnet.NewL(fs...)
		if err != nil {
			fmt.Printf("  %-28s BUILD FAIL: %v\n", fmt.Sprint(fs), err)
			continue
		}
		status := "PASS"
		if err := net.VerifyCounting(7); err != nil {
			status = "FAIL: " + err.Error()
		}
		fmt.Printf("  %-28s %s\n", fmt.Sprint(fs), status)
	}

	fmt.Println("\nreading the table: going down, factors shrink — balancers get narrower")
	fmt.Println("(cheaper switches) while depth grows (more latency). The paper's point")
	fmt.Println("is that every point on this curve is available for ANY width, at")
	fmt.Println("depth O(log^2 w) with small constants.")

	// Which point should YOU pick? The advisor scores every member
	// with a contention-aware cost model (calibrated on the repo's
	// committed benchmark lanes) for a given load profile — the same
	// machinery countnet.AdaptiveCounter.Recommend feeds its live
	// Little's-law load estimate into.
	fmt.Println("\nmeasurement-driven pick (countnet.AdviseFactorization):")
	fmt.Printf("%-12s %-8s %-28s %8s %12s\n", "concurrency", "block", "recommended", "depth", "balancer<=")
	for _, block := range []float64{1, 64} {
		for _, conc := range []float64{1, 4, 16, 64, 256} {
			adv, err := countnet.AdviseFactorization(width, conc, block)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12.0f %-8.0f %-28s %8d %12d\n",
				conc, block, fmt.Sprint(adv.Factors), adv.Depth, adv.MaxBalancerWidth)
		}
	}
	fmt.Println("\nhigher concurrency pushes the pick toward narrower balancers (the")
	fmt.Println("queueing penalty on a wide shared balancer dominates); big block draws")
	fmt.Println("push it back toward shallow networks (one reservation per gate per")
	fmt.Println("block divides the pressure).")
}
