// Load balancing with a balancing network — the "distributing
// network" use counting networks generalize. Jobs arriving on arbitrary
// producers are routed through an L network to worker shards; the step
// property guarantees shard loads never differ by more than one,
// whatever the arrival pattern, with no central dispatcher.
//
// The example pits three dispatch strategies against a deliberately
// adversarial arrival pattern (bursts from a single producer) and
// reports the load spread (max shard load − min shard load):
//
//   - network: tokens routed through L(4,3) — spread ≤ 1, guaranteed
//
//   - random:  independent uniform choice — spread grows like √jobs
//
//   - hashed:  producer-id modulo — collapses under single-producer bursts
//
//     go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"countnet"
)

const (
	shards    = 12 // 4*3
	producers = 8
	jobs      = 60_000
)

func spread(loads []int64) int64 {
	mn, mx := loads[0], loads[0]
	for _, v := range loads[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mx - mn
}

func main() {
	net, err := countnet.NewL(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatching %d jobs from %d producers to %d shards\n", jobs, producers, shards)
	fmt.Printf("network dispatcher: %s (depth %d, balancers <= %d)\n\n",
		net.Name(), net.Depth(), net.MaxBalancerWidth())

	// Adversarial arrival pattern: long single-producer bursts.
	arrivals := make([]int, jobs)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < jobs; {
		p := rng.Intn(producers)
		burst := 1 + rng.Intn(500)
		for b := 0; b < burst && i < jobs; b++ {
			arrivals[i] = p
			i++
		}
	}

	// 1. Balancing-network dispatch: producer p's jobs enter on wire
	// p mod width; concurrent producers hammer the network at once.
	ctr := countnet.NewCounter(net)
	netLoads := make([]int64, shards)
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := jobs / producers
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := ctr.Handle(p)
			local := make([]int64, shards)
			for i := p * chunk; i < (p+1)*chunk; i++ {
				// With shards == network width, value % width is exactly
				// the token's exit wire: pure balancing-network routing.
				shard := h.Next() % int64(shards)
				local[shard]++
			}
			mu.Lock()
			for s, v := range local {
				netLoads[s] += v
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	// 2. Random dispatch.
	randLoads := make([]int64, shards)
	for range arrivals {
		randLoads[rng.Intn(shards)]++
	}

	// 3. Hash-by-producer dispatch.
	hashLoads := make([]int64, shards)
	for _, p := range arrivals {
		hashLoads[p%shards]++
	}

	fmt.Printf("%-10s %-14s loads\n", "strategy", "spread(max-min)")
	fmt.Printf("%-10s %-14d %v\n", "network", spread(netLoads), netLoads)
	fmt.Printf("%-10s %-14d %v\n", "random", spread(randLoads), randLoads)
	fmt.Printf("%-10s %-14d %v\n", "hashed", spread(hashLoads), hashLoads)

	if s := spread(netLoads); s > 1 {
		log.Fatalf("network dispatch spread %d violates the step guarantee", s)
	}
	fmt.Println("\nthe network dispatcher's spread <= 1 is a theorem (the step property),")
	fmt.Println("not a statistical tendency — it holds for every arrival pattern.")
}
