// Quickstart: build a counting network of arbitrary width, use it to
// sort a batch of values, and route a stream of tokens through it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"countnet"
)

func main() {
	// Width 30 = 2*3*5. Family L uses comparators/balancers no wider
	// than the largest factor (5), at depth <= 9.5*9 - 12.5*3 + 3 = 51.
	net, err := countnet.NewL(2, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: width=%d depth=%d gates=%d widest balancer=%d\n\n",
		net.Name(), net.Width(), net.Depth(), net.Size(), net.MaxBalancerWidth())

	// 1. The same network is a sorting network: feed it one batch of
	// width-many values.
	rng := rand.New(rand.NewSource(42))
	batch := make([]int64, net.Width())
	for i := range batch {
		batch[i] = int64(rng.Intn(100))
	}
	sorted, err := net.Sort(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unsorted:", batch)
	fmt.Println("sorted:  ", sorted)

	// 2. And a counting network: however lopsidedly tokens arrive on
	// the input wires, the per-output distribution has the step
	// property (balanced, excess on the first wires).
	tokens := make([]int64, net.Width())
	tokens[3] = 47 // all 47 tokens arrive on one wire
	tokens[17] = 20
	out, err := net.Step(tokens)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntokens in: ", tokens)
	fmt.Println("tokens out:", out)

	// 3. Networks of the same width come in a whole family — one per
	// factorization — trading depth against balancer width.
	fmt.Println("\nother factorizations of width 30:")
	for _, fs := range countnet.Factorizations(30) {
		alt, err := countnet.NewL(fs...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s depth=%-3d widest balancer=%d\n", fmt.Sprint(fs), alt.Depth(), alt.MaxBalancerWidth())
	}
}
