// Pipelined stream sorting: the deployment mode sorting networks are
// built for. A fixed-width network has one goroutine per layer; batch
// k+1 enters layer 1 while batch k occupies layer 2, so steady-state
// throughput is one batch per layer-latency rather than one batch per
// whole-network latency.
//
// The example streams many batches through L(4,4) both sequentially and
// pipelined, verifies every batch, and reports throughput.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"countnet"
)

const batches = 20_000

func main() {
	net, err := countnet.NewL(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	w := net.Width()
	fmt.Printf("streaming %d batches of %d values through %s (depth %d)\n\n",
		batches, w, net.Name(), net.Depth())

	rng := rand.New(rand.NewSource(1))
	inputs := make([][]int64, batches)
	for i := range inputs {
		inputs[i] = make([]int64, w)
		for j := range inputs[i] {
			inputs[i][j] = int64(rng.Intn(1 << 20))
		}
	}

	// Sequential: one reusable sorter.
	seq := countnet.NewBatchSorter(net)
	start := time.Now()
	var checksum int64
	for _, in := range inputs {
		out := seq.Sort(in)
		checksum += out[0] + out[w-1]
	}
	seqElapsed := time.Since(start)
	fmt.Printf("sequential: %v  (%.0f batches/sec)\n",
		seqElapsed.Round(time.Millisecond), float64(batches)/seqElapsed.Seconds())

	// Pipelined: one goroutine per layer.
	in := make(chan []int64, 8)
	start = time.Now()
	go func() {
		defer close(in)
		for _, batch := range inputs {
			in <- append([]int64(nil), batch...)
		}
	}()
	var pipeChecksum int64
	count := 0
	for out := range net.SortStream(in) {
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				log.Fatalf("batch %d not sorted: %v", count, out)
			}
		}
		pipeChecksum += out[0] + out[w-1]
		count++
	}
	pipeElapsed := time.Since(start)
	fmt.Printf("pipelined:  %v  (%.0f batches/sec)\n",
		pipeElapsed.Round(time.Millisecond), float64(batches)/pipeElapsed.Seconds())

	if count != batches || pipeChecksum != checksum {
		log.Fatalf("pipeline lost or corrupted batches: %d/%d, checksum %d vs %d",
			count, batches, pipeChecksum, checksum)
	}
	fmt.Println("\nall batches verified sorted; checksums agree.")
	fmt.Println("(pipelining pays on multicore machines — one goroutine per layer;")
	fmt.Println(" on a single core the channel overhead dominates.)")
}
