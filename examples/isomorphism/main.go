// Isomorphism and its one-way-ness (the paper's Figures 2 and 3).
//
// Every counting network is isomorphic to a sorting network: replace
// balancers by comparators and the same wiring sorts. The converse
// fails — this example demonstrates both directions on live networks:
//
//  1. L(2,3,5), built as a counting network from 2-, 3- and 5-way
//     switches, sorts batches when run under comparator semantics
//     (Figure 2 uses exactly such mixed-width switches).
//
//  2. The bubble-sort network of Figure 3 sorts every batch, yet
//     routing token streams through it breaks the step property; the
//     example prints a concrete witness.
//
//     go run ./examples/isomorphism
package main

import (
	"fmt"
	"log"

	"countnet"
)

func main() {
	// Direction 1: counting => sorting.
	cn, err := countnet.NewL(2, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s built from 2-,3-,5-way switches (counting network)\n", cn.Name())
	fmt.Printf("  counting battery: %v\n", pass(cn.VerifyCounting(1)))
	fmt.Printf("  sorting battery:  %v   <- isomorphism: same wiring, comparator semantics\n\n",
		pass(cn.VerifySorting(1)))

	// Direction 2 fails: sorting =/=> counting.
	bubble, err := countnet.NewBubble(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (Figure 3: bubble sort as a network)\n", bubble.Name())
	fmt.Printf("  sorting battery:  %v\n", pass(bubble.VerifySorting(1)))
	fmt.Printf("  counting battery: %v\n\n", pass(bubble.VerifyCounting(1)))

	// A concrete witness, like the token streams drawn in Figure 3:
	// several tokens per wire expose the imbalance. Search the small
	// input space for the first counterexample.
	witness, out := findWitness(bubble)
	fmt.Printf("  witness: tokens in %v -> out %v", witness, out)
	fmt.Printf("   (not a step sequence)\n\n")

	// The same token stream through a true counting network balances.
	k4, err := countnet.NewK(2, 2)
	if err != nil {
		log.Fatal(err)
	}
	out2, _ := k4.Step(witness)
	fmt.Printf("  same tokens through %s -> %v (step property holds)\n", k4.Name(), out2)
}

// findWitness enumerates small token inputs and returns the first whose
// output violates the step property.
func findWitness(net *countnet.Network) (in, out []int64) {
	w := net.Width()
	in = make([]int64, w)
	for {
		got, err := net.Step(in)
		if err != nil {
			log.Fatal(err)
		}
		if !isStep(got) {
			return in, got
		}
		i := 0
		for i < w {
			in[i]++
			if in[i] <= 4 {
				break
			}
			in[i] = 0
			i++
		}
		if i == w {
			log.Fatal("no witness found in the bounded search (unexpected)")
		}
	}
}

func isStep(x []int64) bool {
	for i := 1; i < len(x); i++ {
		if d := x[i-1] - x[i]; d < 0 || d > 1 {
			return false
		}
	}
	return len(x) < 2 || x[0]-x[len(x)-1] <= 1
}

func pass(err error) string {
	if err == nil {
		return "PASS"
	}
	return "FAIL (" + err.Error() + ")"
}
