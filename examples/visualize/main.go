// Visualize the paper's building blocks as wire diagrams — the textual
// analogue of the paper's figures. Each section prints a construction
// and demonstrates its defining property on a concrete token input.
//
//	go run ./examples/visualize
package main

import (
	"fmt"
	"log"

	"countnet"
)

func main() {
	// Figure 1 analogue: a single balancer. 7 tokens on wire 0 leave
	// balanced, excess on top.
	fmt.Println("=== a single 4-balancer (cf. paper Figure 1) ===")
	bal, err := countnet.NewK(4) // K with one factor: one balancer
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bal.Diagram())
	show(bal, []int64{7, 0, 0, 0})

	// The smallest interesting counting network: K(2,2) = one 4-wide
	// balancer vs L(2,2) built only from 2-balancers.
	fmt.Println("\n=== L(2,2): width 4 from 2-balancers only ===")
	l22, err := countnet.NewL(2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(l22.Diagram())
	show(l22, []int64{5, 1, 0, 0})

	// Figure 2 analogue: mixed 2-,3-,5-way switches in one network.
	fmt.Println("\n=== L(2,3): mixed switch sizes (cf. Figure 2) ===")
	l23, err := countnet.NewL(2, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(l23.Diagram())
	show(l23, []int64{9, 0, 0, 0, 0, 2})

	// Figure 3 analogue: the bubble-sort network and its failure.
	fmt.Println("\n=== Bubble[4]: sorts, but does NOT count (Figure 3) ===")
	bub, err := countnet.NewBubble(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bub.Diagram())
	show(bub, []int64{3, 0, 0, 0})
	fmt.Println("   ^ not a step sequence — whereas every network above balances it.")

	// Token tracing: watch individual tokens thread the network.
	fmt.Println("\n=== tracing three tokens through L(2,2) ===")
	trace, err := l22.TraceTokens([]int{0, 0, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace)

	// Figure 5 analogue: one step sequence, four matrix arrangements.
	// '#' is the high region the paper shades dark.
	fmt.Println("\n=== a step sequence under the four arrangements (cf. Figure 5) ===")
	fmt.Print(countnet.RenderStepArrangements(10, 3, 4))
}

func show(n *countnet.Network, tokens []int64) {
	out, err := n.Step(tokens)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tokens in  %v\ntokens out %v\n", tokens, out)
}
