// Concurrent Fetch&Increment: the application counting networks were
// invented for. Many goroutines draw values from a shared counter built
// on a counting network; contention spreads over the network's
// balancers instead of hammering one word. The example checks the
// network counter's signature guarantee — after quiescence the issued
// values are exactly 0..N-1 — and compares wall time against a single
// atomic under the same load.
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"countnet"
)

const perWorker = 50_000

func main() {
	workers := runtime.GOMAXPROCS(0) * 2
	fmt.Printf("workers: %d, increments per worker: %d\n\n", workers, perWorker)

	// A width-16 counting network from 2- and 4-balancers.
	net, err := countnet.NewL(4, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	ctr := countnet.NewCounter(net)

	var all []int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := ctr.Handle(g) // private entry cursor, no shared dispatch
			local := make([]int64, perWorker)
			for i := range local {
				local[i] = h.Next()
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	networkElapsed := time.Since(start)

	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			log.Fatalf("gap or duplicate at position %d: value %d", i, v)
		}
	}
	fmt.Printf("network counter (%s): issued exactly 0..%d, no gaps, no duplicates\n",
		net.Name(), len(all)-1)
	fmt.Printf("  elapsed: %v (%.2f M ops/sec)\n\n",
		networkElapsed.Round(time.Millisecond),
		float64(len(all))/networkElapsed.Seconds()/1e6)

	// Same load on one atomic word.
	var word atomic.Int64
	start = time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				word.Add(1)
			}
		}()
	}
	wg.Wait()
	atomicElapsed := time.Since(start)
	fmt.Printf("single atomic word: elapsed %v (%.2f M ops/sec)\n",
		atomicElapsed.Round(time.Millisecond),
		float64(workers*perWorker)/atomicElapsed.Seconds()/1e6)

	fmt.Println("\n(On a handful of cores the atomic wins raw throughput; the network's")
	fmt.Println(" point is that per-balancer contention stays flat as cores multiply —")
	fmt.Println(" run cmd/countbench to sweep widths and thread counts.)")
}
