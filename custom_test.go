package countnet

import "testing"

func TestNewCustomMatchesFamilies(t *testing.T) {
	k, err := NewK(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := NewCustom(Options{Base: BaseBalancer, Staircase: StaircaseOptimizedBase}, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Depth() != k.Depth() || ck.Size() != k.Size() {
		t.Errorf("custom-K differs from K: %v vs %v", ck, k)
	}

	l, err := NewL(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCustom(Options{Base: BaseR, Staircase: StaircaseOptimizedBitonic}, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Depth() != l.Depth() || cl.Size() != l.Size() {
		t.Errorf("custom-L differs from L: %v vs %v", cl, l)
	}
}

func TestNewCustomAllVariantsCount(t *testing.T) {
	for _, base := range []BaseKind{BaseBalancer, BaseR} {
		for _, sc := range []StaircaseKind{
			StaircaseOptimizedBase, StaircaseOptimizedBitonic,
			StaircaseBasic, StaircaseBasicSubstituted,
		} {
			n, err := NewCustom(Options{Base: base, Staircase: sc}, 2, 2, 2)
			if err != nil {
				t.Fatalf("base %d staircase %d: %v", base, sc, err)
			}
			if err := n.VerifyCounting(9); err != nil {
				t.Errorf("base %d staircase %d: %v", base, sc, err)
			}
		}
	}
}

func TestNewCustomRejectsBadOptions(t *testing.T) {
	if _, err := NewCustom(Options{Base: BaseKind(9)}, 2, 2); err == nil {
		t.Error("bad base accepted")
	}
	if _, err := NewCustom(Options{Staircase: StaircaseKind(9)}, 2, 2); err == nil {
		t.Error("bad staircase accepted")
	}
	if _, err := NewCustom(Options{}, 1); err == nil {
		t.Error("bad factors accepted")
	}
}

func TestConcatFacade(t *testing.T) {
	bubble, _ := NewBubble(8)
	bitonic, _ := NewBitonic(8)
	cat, err := Concat("bubble+bitonic", bubble, bitonic)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Width() != 8 || cat.Size() != bubble.Size()+bitonic.Size() {
		t.Errorf("concat structure: %v", cat)
	}
	// Bubble alone does not count; with a counting suffix it does.
	if err := bubble.VerifyCounting(3); err == nil {
		t.Error("bubble counted")
	}
	if err := cat.VerifyCounting(3); err != nil {
		t.Errorf("bubble+bitonic: %v", err)
	}
	if _, err := Concat("bad", bubble, nil); err == nil {
		t.Error("nil stage accepted")
	}
	small, _ := NewBitonic(4)
	if _, err := Concat("bad", bubble, small); err == nil {
		t.Error("width mismatch accepted")
	}
}
