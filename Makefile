# Convenience targets. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race short bench bench-plan bench-counter bench-obs bench-adaptive bench-scenarios bench-smoke obs-smoke fleet-smoke scenario-smoke fuzz soak vet fmt lint netvet vet-escape generate generate-check experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# The repo's own vettool (see docs/TESTING.md, "Static analysis"):
# padalign, schedhooks, ctorerr, fieldalign, hotpath, epochorder,
# atomicmix.
netvet:
	$(GO) build -o bin/netvet ./cmd/netvet

# Hot-path escape proof (docs/TESTING.md, "Layer 5½"): drives
# `go build -gcflags=-m` and fails if any escape diagnostic lands in a
# //netvet:hotpath function. Warm build caches replay the diagnostics,
# so repeat runs are cheap.
vet-escape: netvet
	./bin/netvet -escape ./...

# Full static-analysis gate. netvet and `go vet` always run;
# staticcheck/govulncheck/fieldalignment run when installed (CI
# installs pinned versions; locally they are skipped with a notice).
lint: netvet
	$(GO) vet ./...
	$(GO) vet -vettool=bin/netvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping"; fi
	@if command -v fieldalignment >/dev/null 2>&1; then \
		fieldalignment ./... || true; \
	else echo "lint: fieldalignment not installed, skipping"; fi

test:
	$(GO) test -shuffle=on ./...

# Regenerate the branchless compare-exchange kernels from the
# internal/optnet table (cmd/kernelgen verifies every embedded network
# exhaustively before emitting code).
generate:
	$(GO) run ./cmd/kernelgen -out internal/runner/zkernels.go

# Drift gate: fail if the committed kernels differ from what the
# current table generates. CI runs this; `go test ./cmd/kernelgen`
# enforces the same in-tree.
generate-check:
	$(GO) run ./cmd/kernelgen -check -out internal/runner/zkernels.go

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmarks that gate the compiled-plan/memoization fast paths,
# recorded to BENCH_plan.json (the committed "baseline" set is
# preserved; only "current" is rewritten).
BENCH_KEY = 'BenchmarkBuildK|BenchmarkBuildL|BenchmarkSortNetworks|BenchmarkBatchSort|BenchmarkTraverseParallel|BenchmarkWideGateKernel'

bench-plan:
	$(GO) test -run '^$$' -bench $(BENCH_KEY) -benchmem -benchtime 300ms . \
		| $(GO) run ./cmd/benchjson -out BENCH_plan.json -set current

# Counter-engine benchmarks (per-token, combining, batched traversal),
# recorded to BENCH_counter.json with the same preserve-other-sets
# semantics as bench-plan.
BENCH_COUNTER_KEY = 'BenchmarkCounter|BenchmarkTraverseBatch'

bench-counter:
	$(GO) test -run '^$$' -bench $(BENCH_COUNTER_KEY) -benchmem -benchtime 300ms . \
		| $(GO) run ./cmd/benchjson -out BENCH_counter.json -set current

# Observability guard lane: the obs=off/obs=on and flight=off/flight=on
# pairs of BenchmarkObsOverhead, recorded to BENCH_obs.json together
# with the on/off overhead ratios. The obs=off rows pin the
# disabled-path cost (acceptance: within noise of the seed
# BenchmarkTraverseParallel / BenchmarkCounterCombining numbers); the
# flight pair pins the recorder at block-lease granularity
# (acceptance: ratio <= 1.02).
bench-obs:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem -benchtime 300ms . \
		| $(GO) run ./cmd/benchjson -out BENCH_obs.json -set current -overhead \
			-note "obs=off lanes must track BenchmarkTraverseParallel/BenchmarkCounterCombining within noise (<=2%); flight=on/off lease ratio <= 1.02"

# Adaptive-engine load sweep (docs/PERFORMANCE.md, "Adaptive engine"):
# countbench -sweep walks g ∈ {1,2,4,8,16,32} over the width-16
# network and emits benchmark lines straight into benchjson. Two
# passes share one result set: the per-value lanes (atomic / network /
# adaptive, the request pattern of a live ID server) and the block-64
# lanes (combining-block64 / adaptive-block64, the batched pattern the
# crossover study used). Acceptance: adaptive within 15% of the best
# static lane at every g, and >=1.5x the worst static at the
# endpoints.
bench-adaptive:
	$(GO) build -o bin/countbench ./cmd/countbench
	( ./bin/countbench -sweep -width 16 -duration 150ms -repeat 3 \
		-counter atomic,mutex,network,adaptive ; \
	  ./bin/countbench -sweep -width 16 -duration 150ms -repeat 3 \
		-counter combining,adaptive -block 64 ) \
		| $(GO) run ./cmd/benchjson -out BENCH_adaptive.json -set current \
			-note "countbench -sweep, width 16, g=1..32; per-value lanes at block 1, batched lanes at block 64; ns/op is per value"

# One-iteration smoke of the same lanes for CI: proves the benchmarks
# and the JSON tooling run, without timing anything.
bench-smoke:
	$(GO) test -run '^$$' -bench $(BENCH_KEY) -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_smoke.json -set smoke
	$(GO) test -run '^$$' -bench $(BENCH_COUNTER_KEY) -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_counter_smoke.json -set smoke
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_obs_smoke.json -set smoke -overhead
	$(GO) build -o bin/countbench ./cmd/countbench
	( ./bin/countbench -sweep -width 4 -duration 5ms -repeat 1 -goroutines 1,2 \
		-counter atomic,adaptive ; \
	  ./bin/countbench -sweep -width 4 -duration 5ms -repeat 1 -goroutines 1,2 \
		-counter combining,adaptive -block 64 ) \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_adaptive_smoke.json -set smoke

# End-to-end observability smoke: countbench serves the obs endpoint
# while netmon scrapes and validates /snapshot, /metrics and
# /debug/vars once, then the server is interrupted and must exit
# cleanly. Run by the CI bench-smoke job.
obs-smoke:
	$(GO) build -o bin/countbench ./cmd/countbench
	$(GO) build -o bin/netmon ./cmd/netmon
	./bin/countbench -width 4 -duration 20ms -repeat 1 -goroutines 2 \
		-counter network,combining -obs -http 127.0.0.1:8720 -linger >/dev/null & \
	CB=$$!; \
	./bin/netmon -addr 127.0.0.1:8720 -once -validate -timeout 10s; RC=$$?; \
	kill -INT $$CB 2>/dev/null; wait $$CB 2>/dev/null; \
	exit $$RC

# Fleet observability smoke: a 2-worker in-process scenario run must
# produce the merged per-phase fleet table (worker snapshots streamed
# over the harness protocol, folded with obs.Merge). Run by the CI
# bench-smoke job.
fleet-smoke:
	$(GO) build -o bin/scenarios ./cmd/scenarios
	./bin/scenarios -scenario burst -workers 2 -duration 60ms \
		| grep -q "fleet phase" \
		&& echo "fleet-smoke: merged fleet table rendered"

# Multi-process traffic harness (docs/TESTING.md, "Layer 6"). Both
# targets launch real countbench -worker OS processes coordinated
# through the counting-network-backed sync server, and fail unless the
# cross-process step-property/gap oracle passes.
#
# scenario-smoke is the CI gate: 2 workers, 3 barrier-synced phases
# (burst scenario), merged through benchjson. bench-scenarios is the
# full 6-scenario fault-injection sweep that refreshes the committed
# BENCH_scenarios.json "current" set.
scenario-smoke:
	$(GO) build -o bin/countbench ./cmd/countbench
	$(GO) build -o bin/scenarios ./cmd/scenarios
	rm -rf /tmp/scenario_smoke && mkdir -p /tmp/scenario_smoke
	./bin/scenarios -scenario burst -workers 2 -duration 100ms \
		-bin bin/countbench -out /tmp/scenario_smoke
	$(GO) run ./cmd/benchjson -out /tmp/scenario_smoke/BENCH_scenarios.json \
		-set smoke /tmp/scenario_smoke/worker-*.json

bench-scenarios:
	$(GO) build -o bin/countbench ./cmd/countbench
	$(GO) build -o bin/scenarios ./cmd/scenarios
	rm -rf /tmp/scenario_bench && mkdir -p /tmp/scenario_bench
	./bin/scenarios -scenario all -workers 3 -duration 100ms \
		-bin bin/countbench -out /tmp/scenario_bench
	$(GO) run ./cmd/benchjson -out BENCH_scenarios.json -set current \
		-note "6 scenarios, 3 workers (real processes), width 8, 100ms phases, seed 1; oracle passed" \
		/tmp/scenario_bench/worker-*.json

# Continuous fuzzing entry points (each runs until interrupted).
fuzz:
	$(GO) test -fuzz=FuzzApplyTokensStep -fuzztime=30s ./internal/runner
	$(GO) test -fuzz=FuzzBatchVsSerial -fuzztime=30s ./internal/runner
	$(GO) test -fuzz=FuzzComparatorsSort -fuzztime=30s ./internal/runner
	$(GO) test -fuzz=FuzzKernelVsSort -fuzztime=30s ./internal/runner
	$(GO) test -fuzz=FuzzJSONUnmarshal -fuzztime=30s ./internal/network
	$(GO) test -run '^$$' -fuzz=FuzzSnapshotMerge -fuzztime=30s ./internal/obs
	$(GO) test -run '^$$' -fuzz=FuzzCounterSchedules -fuzztime=30s ./internal/counter
	$(GO) test -run '^$$' -fuzz=FuzzAdaptiveSchedules -fuzztime=30s ./internal/counter
	$(GO) test -run '^$$' -fuzz=FuzzPoolSchedules -fuzztime=30s ./internal/pool

# Nightly-scale schedule exploration (see docs/TESTING.md).
soak:
	$(GO) test -tags soak -run Soak -timeout 20m -v ./internal/sched
	$(GO) test -tags soak -run Soak -timeout 20m -v ./internal/counter
	$(GO) test -run Soak -timeout 20m ./internal/core

experiments:
	$(GO) run ./cmd/experiments

verify:
	$(GO) run ./cmd/verifyall

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/isomorphism
	$(GO) run ./examples/tradeoff 96
	$(GO) run ./examples/loadbalance
	$(GO) run ./examples/concurrent

clean:
	$(GO) clean -testcache
