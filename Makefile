# Convenience targets. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race short bench bench-plan bench-counter bench-smoke fuzz soak vet fmt lint netvet experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# The repo's own vettool (see docs/TESTING.md, "Static analysis"):
# padalign, schedhooks, ctorerr, fieldalign.
netvet:
	$(GO) build -o bin/netvet ./cmd/netvet

# Full static-analysis gate. netvet and `go vet` always run;
# staticcheck/govulncheck/fieldalignment run when installed (CI
# installs pinned versions; locally they are skipped with a notice).
lint: netvet
	$(GO) vet ./...
	$(GO) vet -vettool=bin/netvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping"; fi
	@if command -v fieldalignment >/dev/null 2>&1; then \
		fieldalignment ./... || true; \
	else echo "lint: fieldalignment not installed, skipping"; fi

test:
	$(GO) test -shuffle=on ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmarks that gate the compiled-plan/memoization fast paths,
# recorded to BENCH_plan.json (the committed "baseline" set is
# preserved; only "current" is rewritten).
BENCH_KEY = 'BenchmarkBuildK|BenchmarkBuildL|BenchmarkSortNetworks|BenchmarkBatchSort|BenchmarkTraverseParallel'

bench-plan:
	$(GO) test -run '^$$' -bench $(BENCH_KEY) -benchmem -benchtime 300ms . \
		| $(GO) run ./cmd/benchjson -out BENCH_plan.json -set current

# Counter-engine benchmarks (per-token, combining, batched traversal),
# recorded to BENCH_counter.json with the same preserve-other-sets
# semantics as bench-plan.
BENCH_COUNTER_KEY = 'BenchmarkCounter|BenchmarkTraverseBatch'

bench-counter:
	$(GO) test -run '^$$' -bench $(BENCH_COUNTER_KEY) -benchmem -benchtime 300ms . \
		| $(GO) run ./cmd/benchjson -out BENCH_counter.json -set current

# One-iteration smoke of the same lanes for CI: proves the benchmarks
# and the JSON tooling run, without timing anything.
bench-smoke:
	$(GO) test -run '^$$' -bench $(BENCH_KEY) -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_smoke.json -set smoke
	$(GO) test -run '^$$' -bench $(BENCH_COUNTER_KEY) -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_counter_smoke.json -set smoke

# Continuous fuzzing entry points (each runs until interrupted).
fuzz:
	$(GO) test -fuzz=FuzzApplyTokensStep -fuzztime=30s ./internal/runner
	$(GO) test -fuzz=FuzzBatchVsSerial -fuzztime=30s ./internal/runner
	$(GO) test -fuzz=FuzzComparatorsSort -fuzztime=30s ./internal/runner
	$(GO) test -fuzz=FuzzJSONUnmarshal -fuzztime=30s ./internal/network
	$(GO) test -run '^$$' -fuzz=FuzzCounterSchedules -fuzztime=30s ./internal/counter
	$(GO) test -run '^$$' -fuzz=FuzzPoolSchedules -fuzztime=30s ./internal/pool

# Nightly-scale schedule exploration (see docs/TESTING.md).
soak:
	$(GO) test -tags soak -run Soak -timeout 20m -v ./internal/sched
	$(GO) test -tags soak -run Soak -timeout 20m -v ./internal/counter
	$(GO) test -run Soak -timeout 20m ./internal/core

experiments:
	$(GO) run ./cmd/experiments

verify:
	$(GO) run ./cmd/verifyall

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/isomorphism
	$(GO) run ./examples/tradeoff 96
	$(GO) run ./examples/loadbalance
	$(GO) run ./examples/concurrent

clean:
	$(GO) clean -testcache
