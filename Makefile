# Convenience targets. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race short bench fuzz vet fmt experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/runner ./internal/counter ./internal/sim .

bench:
	$(GO) test -bench=. -benchmem ./...

# Continuous fuzzing entry points (each runs until interrupted).
fuzz:
	$(GO) test -fuzz=FuzzApplyTokensStep -fuzztime=30s ./internal/runner
	$(GO) test -fuzz=FuzzComparatorsSort -fuzztime=30s ./internal/runner
	$(GO) test -fuzz=FuzzJSONUnmarshal -fuzztime=30s ./internal/network

experiments:
	$(GO) run ./cmd/experiments

verify:
	$(GO) run ./cmd/verifyall

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/isomorphism
	$(GO) run ./examples/tradeoff 96
	$(GO) run ./examples/loadbalance
	$(GO) run ./examples/concurrent

clean:
	$(GO) clean -testcache
