package countnet

import "countnet/internal/pool"

// Pool is a concurrent unordered producer/consumer collection built on
// two counting networks (one spreading insertions, one removals over
// per-slot buffers): every item Put is returned by exactly one Get,
// and contention spreads across the networks' balancers and the slot
// locks instead of one central lock.
type Pool[T any] struct {
	inner *pool.Pool[T]
}

// NewPool builds a Pool over the given counting network; the network's
// width sets the number of buffer slots. Pass WithObservability to
// record put/get counts and the underlying networks' balancer metrics
// (as "<name>", "<name>.put" and "<name>.get" groups).
func NewPool[T any](n *Network, opts ...Option) *Pool[T] {
	p := pool.New[T](n.inner)
	if o := buildOptions(opts); o.obsName != "" {
		p.EnableObs(o.obsName, nil)
	}
	return &Pool[T]{inner: p}
}

// Put inserts an item (shared dispatcher; use a Handle in tight loops).
func (p *Pool[T]) Put(item T) { p.inner.Put(item) }

// Get removes and returns an item, blocking until one is available.
func (p *Pool[T]) Get() T { return p.inner.Get() }

// Len reports the number of buffered, unconsumed items (exact at
// quiescence).
func (p *Pool[T]) Len() int { return p.inner.Len() }

// PoolHandle is a single-goroutine view of a Pool.
type PoolHandle[T any] struct {
	inner *pool.Handle[T]
}

// Handle returns a goroutine-local view; pass the worker index as id.
func (p *Pool[T]) Handle(id int) *PoolHandle[T] {
	return &PoolHandle[T]{inner: p.inner.Handle(id)}
}

// Put inserts an item.
func (h *PoolHandle[T]) Put(item T) { h.inner.Put(item) }

// Get removes and returns an item, blocking until one is available.
func (h *PoolHandle[T]) Get() T { return h.inner.Get() }
