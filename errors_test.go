package countnet

import (
	"reflect"
	"strings"
	"testing"
)

// TestConstructorErrorPaths pins the public constructors' rejection of
// malformed factorizations: no factors, factors below 2, negatives —
// each must return a descriptive error naming the offending factor,
// never panic or hand back a half-built network.
func TestConstructorErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		build   func() (*Network, error)
		wantSub string
	}{
		{"NewK no factors", func() (*Network, error) { return NewK() }, "empty factorization"},
		{"NewL no factors", func() (*Network, error) { return NewL() }, "empty factorization"},
		{"NewK factor 1", func() (*Network, error) { return NewK(1, 2) }, "p0 = 1"},
		{"NewK factor 0", func() (*Network, error) { return NewK(0, 3) }, "p0 = 0"},
		{"NewL negative factor", func() (*Network, error) { return NewL(-2, 2) }, "p0 = -2"},
		{"NewL factor 1 mid-list", func() (*Network, error) { return NewL(2, 1, 3) }, "p1 = 1"},
		{"NewR p below 2", func() (*Network, error) { return NewR(1, 3) }, "p0 = 1"},
		{"NewR q below 2", func() (*Network, error) { return NewR(3, 1) }, "p1 = 1"},
		{"NewR both zero", func() (*Network, error) { return NewR(0, 0) }, "p0 = 0"},
	}
	for _, tc := range cases {
		n, err := tc.build()
		if err == nil {
			t.Errorf("%s: accepted, built %s", tc.name, n)
			continue
		}
		if n != nil {
			t.Errorf("%s: non-nil network alongside error %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not name the offense (%q)", tc.name, err, tc.wantSub)
		}
	}
}

// TestSingleFactorConstructors: n = 1 is a legal edge case — K(p) and
// L(p) degenerate to a single p-balancer of depth 1 that both counts
// and sorts.
func TestSingleFactorConstructors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (*Network, error)
		width int
	}{
		{"K(2)", func() (*Network, error) { return NewK(2) }, 2},
		{"L(2)", func() (*Network, error) { return NewL(2) }, 2},
		{"L(5)", func() (*Network, error) { return NewL(5) }, 5},
	} {
		n, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if n.Width() != tc.width || n.Depth() != 1 || n.Size() != 1 {
			t.Errorf("%s: got %s, want single balancer of width %d", tc.name, n, tc.width)
		}
		if err := n.VerifyCounting(3); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if err := n.VerifySorting(3); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

// TestSortBatchesWrongWidthMidSlice: a malformed batch anywhere in the
// slice must fail fast, name the offending index, and leave every
// batch untouched — validation happens before any sorting starts.
func TestSortBatchesWrongWidthMidSlice(t *testing.T) {
	n, err := NewK(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]int64{
		{3, 1, 2, 0},
		{9, 8, 7}, // wrong width
		{4, 6, 5, 7},
	}
	orig := make([][]int64, len(batches))
	for i, b := range batches {
		orig[i] = append([]int64(nil), b...)
	}
	err = n.SortBatches(batches, 2)
	if err == nil {
		t.Fatal("wrong-width batch accepted")
	}
	if !strings.Contains(err.Error(), "batch 1") {
		t.Errorf("error %q does not name batch 1", err)
	}
	if !reflect.DeepEqual(batches, orig) {
		t.Errorf("batches mutated despite validation error: %v", batches)
	}
}
