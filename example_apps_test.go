package countnet_test

import (
	"fmt"
	"sort"
	"sync"

	"countnet"
)

// A reusable batch sorter avoids per-call allocation in hot loops.
func ExampleNewBatchSorter() {
	net, err := countnet.NewL(2, 2)
	if err != nil {
		panic(err)
	}
	s := countnet.NewBatchSorter(net)
	fmt.Println(s.Sort([]int64{4, 1, 3, 2}))
	fmt.Println(s.Sort([]int64{9, 9, 0, 9}))
	// Output:
	// [1 2 3 4]
	// [0 9 9 9]
}

// SortBatches spreads many independent batches over worker goroutines.
func ExampleNetwork_SortBatches() {
	net, err := countnet.NewK(2, 3)
	if err != nil {
		panic(err)
	}
	batches := [][]int64{
		{6, 5, 4, 3, 2, 1},
		{1, 1, 2, 2, 0, 0},
	}
	if err := net.SortBatches(batches, 2); err != nil {
		panic(err)
	}
	fmt.Println(batches[0])
	fmt.Println(batches[1])
	// Output:
	// [1 2 3 4 5 6]
	// [0 0 1 1 2 2]
}

// The Pool delivers every item exactly once across concurrent
// producers and consumers.
func ExampleNewPool() {
	net, err := countnet.NewL(2, 2)
	if err != nil {
		panic(err)
	}
	p := countnet.NewPool[int](net)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := p.Handle(g)
			for i := 0; i < 3; i++ {
				h.Put(g*3 + i)
			}
		}(g)
	}
	wg.Wait()
	got := make([]int, 6)
	for i := range got {
		got[i] = p.Get()
	}
	sort.Ints(got)
	fmt.Println(got)
	// Output:
	// [0 1 2 3 4 5]
}

// Composition: any balancing network followed by a counting network is
// a counting network.
func ExampleConcat() {
	bubble, _ := countnet.NewBubble(4)
	bitonic, _ := countnet.NewBitonic(4)
	cat, err := countnet.Concat("bubble+bitonic", bubble, bitonic)
	if err != nil {
		panic(err)
	}
	fmt.Println("bubble alone counts:", bubble.VerifyCounting(1) == nil)
	fmt.Println("with suffix counts: ", cat.VerifyCounting(1) == nil)
	// Output:
	// bubble alone counts: false
	// with suffix counts:  true
}

// TraceTokens shows individual tokens threading the network.
func ExampleNetwork_TraceTokens() {
	net, err := countnet.NewK(2, 2) // one 4-balancer
	if err != nil {
		panic(err)
	}
	out, err := net.TraceTokens([]int{2, 2})
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output:
	// token 0: wire 2 -[K(2,2)/C.base #0]-> wire 0  => exit position 0, value 0
	// token 1: wire 2 -[K(2,2)/C.base #1]-> wire 1  => exit position 1, value 1
	// exit counts (output order): [1 1 0 0]
}
