package countnet

import (
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestAdaptiveCounterPublic: the public surface issues distinct values
// under concurrency and reports a valid strategy, with and without
// observability (which also starts the governor).
func TestAdaptiveCounterPublic(t *testing.T) {
	net, err := NewL(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, withObs := range []bool{false, true} {
		name := "plain"
		opts := []Option(nil)
		if withObs {
			name = "observed"
			opts = append(opts, WithObservability("public-adaptive"))
		}
		t.Run(name, func(t *testing.T) {
			c := NewAdaptiveCounter(net, opts...)
			defer c.Close()
			const workers, perWorker = 4, 500
			out := make([][]int64, workers)
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h := c.Handle(g)
					vals := make([]int64, perWorker)
					for i := range vals {
						vals[i] = h.Next()
					}
					out[g] = vals
				}(g)
			}
			wg.Wait()
			var all []int64
			for _, vs := range out {
				all = append(all, vs...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			for i := 1; i < len(all); i++ {
				if all[i] == all[i-1] {
					t.Fatalf("duplicate value %d", all[i])
				}
			}
			switch c.Strategy() {
			case "atomic", "network", "combining":
			default:
				t.Fatalf("Strategy() = %q", c.Strategy())
			}
			if withObs {
				data, err := ObsSnapshotJSON()
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(string(data), `"public-adaptive"`) {
					t.Fatal("adaptive group missing from obs snapshot")
				}
				if !strings.Contains(string(data), `"adaptive"`) {
					t.Fatal("adaptive kind missing from obs snapshot")
				}
			}
			c.Close() // idempotent with the deferred Close
		})
	}
}

// TestAdaptiveCounterBlockDraws: NextBlock on counter and handle stays
// in the same gap-free value space.
func TestAdaptiveCounterBlockDraws(t *testing.T) {
	net, err := NewL(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewAdaptiveCounter(net)
	defer c.Close()
	var all []int64
	dst := make([]int64, 16)
	c.NextBlock(dst)
	all = append(all, dst...)
	h := c.Handle(0)
	h.NextBlock(dst)
	all = append(all, dst...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("values not exactly 0..%d: position %d holds %d", len(all)-1, i, v)
		}
	}
}

// TestAdviseFactorizationPublic: the advisor returns a legal
// factorization of the requested width, shifts to narrower balancers
// as the load grows, and its recommendation builds.
func TestAdviseFactorizationPublic(t *testing.T) {
	low, err := AdviseFactorization(16, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := AdviseFactorization(16, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, adv := range []FactorizationAdvice{low, high} {
		prod := 1
		for _, f := range adv.Factors {
			prod *= f
		}
		if prod != 16 {
			t.Fatalf("recommended factors %v do not multiply to 16", adv.Factors)
		}
		if adv.Rationale == "" {
			t.Fatal("missing rationale")
		}
		if _, err := NewL(adv.Factors...); err != nil {
			t.Fatalf("recommended factorization does not build: %v", err)
		}
	}
	if high.MaxBalancerWidth > low.MaxBalancerWidth {
		t.Fatalf("higher load recommended wider balancers: %d > %d",
			high.MaxBalancerWidth, low.MaxBalancerWidth)
	}
	if _, err := AdviseFactorization(1, 1, 1); err == nil {
		t.Fatal("width 1 did not error")
	}
}

// TestAdaptiveRecommend: the live counter's Recommend is wired to the
// same advisor.
func TestAdaptiveRecommend(t *testing.T) {
	net, err := NewL(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewAdaptiveCounter(net)
	defer c.Close()
	adv, err := c.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	prod := 1
	for _, f := range adv.Factors {
		prod *= f
	}
	if prod != 4 {
		t.Fatalf("recommended factors %v do not multiply to 4", adv.Factors)
	}
}
