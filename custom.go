package countnet

import (
	"fmt"

	"countnet/internal/core"
	"countnet/internal/network"
)

// BaseKind selects the base-case C(p,q) network of the generic Section
// 4 construction.
type BaseKind int

const (
	// BaseBalancer realizes C(p,q) as one pq-wide switch (family K's
	// choice; depth 1, width up to max(pi*pj)).
	BaseBalancer BaseKind = iota
	// BaseR realizes C(p,q) as the constant-depth R(p,q) network
	// (family L's choice; depth <= 16, width up to max(pi)).
	BaseR
	// BaseOptBalancer realizes C(p,q) as the embedded depth-optimal
	// sorting network of width p*q when p*q <= 16 (2-balancers only),
	// falling back to one pq-wide switch beyond the table. The result
	// is a sorting network but carries NO counting guarantee — see
	// NewKOpt.
	BaseOptBalancer
	// BaseOptR realizes C(p,q) as the embedded depth-optimal sorting
	// network when p*q <= 16, falling back to R(p,q) beyond the table.
	// Sorting-only, like BaseOptBalancer.
	BaseOptR
)

// StaircaseKind selects the staircase-merger variant of Sections 4.3
// and 4.3.1.
type StaircaseKind int

const (
	// StaircaseOptimizedBase: base layer, 2-balancer layer, base layer
	// (depth 2d+1). Family K's choice.
	StaircaseOptimizedBase StaircaseKind = iota
	// StaircaseOptimizedBitonic: base layer, 2-balancer layer,
	// bitonic-converter layer (depth d+3). Family L's choice.
	StaircaseOptimizedBitonic
	// StaircaseBasic: base layer plus two-merger rounds (depth <= d+6);
	// uses switches of width 2q.
	StaircaseBasic
	// StaircaseBasicSubstituted: StaircaseBasic with each 2q-switch
	// replaced by a T(q,1,1) network (depth <= d+9), keeping switches
	// within max(p,q).
	StaircaseBasicSubstituted
)

// Options configures NewCustom. The zero value reproduces family K.
type Options struct {
	Base      BaseKind
	Staircase StaircaseKind
}

// NewCustom builds the generic counting network C(p0,...,pn-1) of
// Section 4 with explicit choices for the pluggable pieces. NewK and
// NewL are the two configurations the paper names; the other base and
// staircase combinations are useful for ablation (see experiment E8).
// Configurations using BaseOptBalancer or BaseOptR produce SORTING
// networks only (see NewKOpt): the counting property is not asserted
// for them.
func NewCustom(opt Options, factors ...int) (*Network, error) {
	cfg := core.Config{}
	switch opt.Base {
	case BaseBalancer:
		cfg.Base = core.BalancerBase
	case BaseR:
		cfg.Base = core.RBase
	case BaseOptBalancer:
		cfg.Base = core.OptBalancerBase
	case BaseOptR:
		cfg.Base = core.OptRBase
	default:
		return nil, fmt.Errorf("countnet: unknown base kind %d", opt.Base)
	}
	switch opt.Staircase {
	case StaircaseOptimizedBase:
		cfg.Staircase = core.StaircaseOptBase
	case StaircaseOptimizedBitonic:
		cfg.Staircase = core.StaircaseOptBitonic
	case StaircaseBasic:
		cfg.Staircase = core.StaircaseBasic
	case StaircaseBasicSubstituted:
		cfg.Staircase = core.StaircaseBasicSub
	default:
		return nil, fmt.Errorf("countnet: unknown staircase kind %d", opt.Staircase)
	}
	return wrapErr(core.New(cfg, factors...))
}

// Concat sequentially composes networks of equal width: stage k's
// output sequence feeds stage k+1's input sequence. Appending any
// counting network to an arbitrary balancing network yields a counting
// network.
func Concat(name string, nets ...*Network) (*Network, error) {
	inner := make([]*network.Network, len(nets))
	for i, n := range nets {
		if n == nil || n.inner == nil {
			return nil, fmt.Errorf("countnet: concat stage %d is nil", i)
		}
		inner[i] = n.inner
	}
	return wrapErr(network.Concat(name, inner...))
}
